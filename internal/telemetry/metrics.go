package telemetry

import (
	"expvar"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Labels attaches dimension values to a metric (e.g. kernel="RHS"). Label
// sets are rendered sorted by key so metric identity is deterministic.
type Labels map[string]string

// Registry holds counters, gauges and histograms and renders them in the
// Prometheus text exposition format and as an expvar snapshot. A nil
// *Registry is a valid disabled registry: every constructor returns a nil
// metric whose methods are no-ops.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metricEntry
}

type metricKind int

const (
	counterKind metricKind = iota
	gaugeKind
	histogramKind
)

func (k metricKind) String() string {
	return [...]string{"counter", "gauge", "histogram"}[k]
}

type metricEntry struct {
	name   string // base metric name, no labels
	help   string
	labels string // rendered {k="v",...} or ""
	kind   metricKind

	counter *Counter
	gauge   *Gauge
	hist    *Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metricEntry)}
}

// renderLabels serializes a label set sorted by key: {a="x",b="y"}.
func renderLabels(ls Labels) string {
	if len(ls) == 0 {
		return ""
	}
	keys := make([]string, 0, len(ls))
	for k := range ls {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", k, ls[k])
	}
	b.WriteByte('}')
	return b.String()
}

// lookup returns the entry for (name, labels), creating it with mk on first
// use. Re-registering the same identity with a different kind panics — that
// is a programming error, not a runtime condition.
func (r *Registry) lookup(name, help string, labels Labels, kind metricKind, mk func(*metricEntry)) *metricEntry {
	ls := renderLabels(labels)
	id := name + ls
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.metrics[id]
	if ok {
		if e.kind != kind {
			panic(fmt.Sprintf("telemetry: metric %s re-registered as %s (was %s)", id, kind, e.kind))
		}
		return e
	}
	e = &metricEntry{name: name, help: help, labels: ls, kind: kind}
	mk(e)
	r.metrics[id] = e
	return e
}

// --- Counter ---------------------------------------------------------------

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Int64 }

// Counter returns the counter for (name, labels), creating it if needed.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, labels, counterKind, func(e *metricEntry) {
		e.counter = &Counter{}
	}).counter
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increments the counter by n (n must not be negative).
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// --- Gauge -----------------------------------------------------------------

// Gauge is a settable float metric.
type Gauge struct{ bits atomic.Uint64 }

// Gauge returns the gauge for (name, labels), creating it if needed.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, labels, gaugeKind, func(e *metricEntry) {
		e.gauge = &Gauge{}
	}).gauge
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add increments the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// --- Histogram -------------------------------------------------------------

// Histogram counts observations into explicit buckets (upper bounds,
// strictly increasing; an implicit +Inf bucket is always present).
type Histogram struct {
	upper  []float64
	counts []atomic.Int64 // len(upper)+1, last is +Inf
	sum    atomic.Uint64  // float64 bits
	count  atomic.Int64
}

// StepLatencyBuckets are the default step-latency buckets (seconds),
// spanning interactive laptop runs through production-scale steps.
var StepLatencyBuckets = []float64{
	0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 30,
}

// NetLatencyBuckets are the default wire-frame latency buckets (seconds):
// loopback frames land in the microsecond range, congested cross-machine
// links in the tens of milliseconds.
var NetLatencyBuckets = []float64{
	5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3,
	0.01, 0.025, 0.05, 0.1, 0.25, 1,
}

// Histogram returns the histogram for (name, labels), creating it with the
// given bucket upper bounds if needed.
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if r == nil {
		return nil
	}
	return r.lookup(name, help, labels, histogramKind, func(e *metricEntry) {
		for i := 1; i < len(buckets); i++ {
			if buckets[i] <= buckets[i-1] {
				panic(fmt.Sprintf("telemetry: histogram %s buckets not strictly increasing", name))
			}
		}
		h := &Histogram{upper: append([]float64(nil), buckets...)}
		h.counts = make([]atomic.Int64, len(buckets)+1)
		e.hist = h
	}).hist
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.upper, v) // first bucket with upper >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Buckets returns the upper bounds and the per-bucket (non-cumulative)
// counts, the +Inf bucket last.
func (h *Histogram) Buckets() (upper []float64, counts []int64) {
	if h == nil {
		return nil, nil
	}
	upper = append([]float64(nil), h.upper...)
	counts = make([]int64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return upper, counts
}

// --- Exposition ------------------------------------------------------------

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// mergeLabels splices an extra label (le=...) into a rendered label set.
func mergeLabels(rendered, extra string) string {
	if rendered == "" {
		return "{" + extra + "}"
	}
	return rendered[:len(rendered)-1] + "," + extra + "}"
}

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4), grouped by metric name with HELP/TYPE headers.
func (r *Registry) WritePrometheus(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.Lock()
	entries := make([]*metricEntry, 0, len(r.metrics))
	for _, e := range r.metrics {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].name != entries[j].name {
			return entries[i].name < entries[j].name
		}
		return entries[i].labels < entries[j].labels
	})
	lastName := ""
	for _, e := range entries {
		if e.name != lastName {
			lastName = e.name
			if e.help != "" {
				fmt.Fprintf(w, "# HELP %s %s\n", e.name, e.help)
			}
			fmt.Fprintf(w, "# TYPE %s %s\n", e.name, e.kind)
		}
		switch e.kind {
		case counterKind:
			fmt.Fprintf(w, "%s%s %d\n", e.name, e.labels, e.counter.Value())
		case gaugeKind:
			fmt.Fprintf(w, "%s%s %s\n", e.name, e.labels, formatFloat(e.gauge.Value()))
		case histogramKind:
			upper, counts := e.hist.Buckets()
			var cum int64
			for i := range counts {
				cum += counts[i]
				bound := math.Inf(1)
				if i < len(upper) {
					bound = upper[i]
				}
				le := `le="` + formatFloat(bound) + `"`
				fmt.Fprintf(w, "%s_bucket%s %d\n", e.name, mergeLabels(e.labels, le), cum)
			}
			fmt.Fprintf(w, "%s_sum%s %s\n", e.name, e.labels, formatFloat(e.hist.Sum()))
			fmt.Fprintf(w, "%s_count%s %d\n", e.name, e.labels, e.hist.Count())
		}
	}
}

// Snapshot returns a plain map of every metric's current value, suitable
// for expvar publication (histograms expose sum/count/buckets).
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	entries := make([]*metricEntry, 0, len(r.metrics))
	for _, e := range r.metrics {
		entries = append(entries, e)
	}
	r.mu.Unlock()
	out := make(map[string]any, len(entries))
	for _, e := range entries {
		id := e.name + e.labels
		switch e.kind {
		case counterKind:
			out[id] = e.counter.Value()
		case gaugeKind:
			out[id] = e.gauge.Value()
		case histogramKind:
			upper, counts := e.hist.Buckets()
			out[id] = map[string]any{
				"sum": e.hist.Sum(), "count": e.hist.Count(),
				"upper": upper, "counts": counts,
			}
		}
	}
	return out
}

// PublishExpvar exposes the registry under the given expvar name (visible
// at /debug/vars). Publishing the same name twice is a no-op, so tests and
// repeated runs inside one process are safe.
func (r *Registry) PublishExpvar(name string) {
	if r == nil || expvar.Get(name) != nil {
		return
	}
	expvar.Publish(name, expvar.Func(func() any { return r.Snapshot() }))
}
