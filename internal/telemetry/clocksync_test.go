package telemetry

import (
	"math/rand"
	"testing"
)

// simClock models two clocks separated by a true offset plus asymmetric
// per-direction delays, and produces the four NTP timestamps of one
// ping-pong.
type simClock struct {
	trueOffsetNS int64 // peer = root + offset
	rootNow      int64
}

// pingPong advances root time and returns (t0, t1, t2, t3) for a ping with
// the given forward/return wire delays and peer turnaround time.
func (c *simClock) pingPong(fwd, turn, back int64) (t0, t1, t2, t3 int64) {
	t0 = c.rootNow
	t1 = t0 + fwd + c.trueOffsetNS // arrival stamped on the peer clock
	t2 = t1 + turn
	t3 = t2 - c.trueOffsetNS + back // reply arrival back on the root clock
	c.rootNow = t3 + 1000           // next ping a little later
	return
}

func TestClockEstimatorExactWhenSymmetric(t *testing.T) {
	c := simClock{trueOffsetNS: 123_456_789}
	var e ClockEstimator
	t0, t1, t2, t3 := c.pingPong(500, 200, 500)
	e.Add(t0, t1, t2, t3)
	if got := e.Offset(); got != c.trueOffsetNS {
		t.Fatalf("symmetric path: offset = %d, want exactly %d", got, c.trueOffsetNS)
	}
	if e.RTT() != 1000 {
		t.Fatalf("rtt = %d, want 1000 (turnaround excluded)", e.RTT())
	}
}

// TestClockEstimatorConvergesUnderAsymmetricDelay injects heavily
// asymmetric, jittery delays: most samples carry queueing noise biased to
// one direction, but occasional near-quiet samples appear (as they do on a
// real host). The min-RTT filter must converge to those quiet samples, and
// the final error must respect the ErrorBound guarantee.
func TestClockEstimatorConvergesUnderAsymmetricDelay(t *testing.T) {
	const trueOffset = -987_654_321
	c := simClock{trueOffsetNS: trueOffset}
	rng := rand.New(rand.NewSource(7))
	var e ClockEstimator

	baseFwd, baseBack := int64(400), int64(600) // 200ns of standing asymmetry
	var firstErr int64
	for i := 0; i < 400; i++ {
		// Asymmetric queueing: the forward path suffers up to 50us extra,
		// the return path up to 5us. Roughly 1-in-40 samples are quiet.
		fwd, back := baseFwd, baseBack
		if rng.Intn(40) != 0 {
			fwd += rng.Int63n(50_000)
			back += rng.Int63n(5_000)
		}
		t0, t1, t2, t3 := c.pingPong(fwd, 100+rng.Int63n(300), back)
		e.Add(t0, t1, t2, t3)
		if i == 0 {
			firstErr = abs64(e.Offset() - trueOffset)
		}
	}
	finalErr := abs64(e.Offset() - trueOffset)
	if finalErr > e.ErrorBound() {
		t.Fatalf("final error %dns exceeds the RTT/2 bound %dns", finalErr, e.ErrorBound())
	}
	// Quiet samples have rtt = 1000ns and asymmetry 200ns, so the best
	// estimate must land within 100ns of the truth.
	if finalErr > 100 {
		t.Fatalf("final error %dns, want <= 100ns (quiet-sample asymmetry/2)", finalErr)
	}
	if finalErr > firstErr {
		t.Fatalf("estimate degraded: first error %dns, final %dns", firstErr, finalErr)
	}
	if e.Samples() != 400 {
		t.Fatalf("samples = %d, want 400", e.Samples())
	}
}

// TestClockEstimatorBoundHolds: for ANY delay asymmetry the estimate error
// must stay within RTT/2 of the truth — the hard guarantee alignment relies
// on.
func TestClockEstimatorBoundHolds(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 100; trial++ {
		trueOffset := rng.Int63n(2_000_000_000) - 1_000_000_000
		c := simClock{trueOffsetNS: trueOffset}
		var e ClockEstimator
		for i := 0; i < 20; i++ {
			t0, t1, t2, t3 := c.pingPong(1+rng.Int63n(100_000), rng.Int63n(1000), 1+rng.Int63n(100_000))
			e.Add(t0, t1, t2, t3)
		}
		if err := abs64(e.Offset() - trueOffset); err > e.ErrorBound() {
			t.Fatalf("trial %d: error %dns exceeds bound %dns (offset %d)", trial, err, e.ErrorBound(), trueOffset)
		}
	}
}

func TestClockEstimatorZeroValue(t *testing.T) {
	var e ClockEstimator
	if e.Offset() != 0 || e.RTT() != 0 || e.Samples() != 0 {
		t.Fatalf("zero estimator not inert: offset %d rtt %d n %d", e.Offset(), e.RTT(), e.Samples())
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}
