package telemetry

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Server is the opt-in telemetry HTTP listener. It mounts:
//
//	/metrics      Prometheus text exposition of the registry
//	/debug/vars   expvar JSON (the registry is published there too)
//	/debug/pprof  the standard Go profiling endpoints
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts the telemetry server on addr (":0" picks a free port) and
// returns immediately; requests are handled on a background goroutine.
func Serve(addr string, reg *Registry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	reg.PublishExpvar("mpcf")
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.Handle("/debug/vars", expvar.Handler())
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go s.srv.Serve(ln) //nolint:errcheck // shutdown error surfaces via Close
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string {
	if s == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener.
func (s *Server) Close() error {
	if s == nil {
		return nil
	}
	return s.srv.Close()
}
