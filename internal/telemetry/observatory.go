package telemetry

// The cluster-wide performance observatory: every rank streams span batches
// and per-phase step timings to a collector on rank 0, which aligns remote
// clocks (clocksync.go), merges all spans into one Chrome trace with one
// track group per rank, and accumulates the paper's Table-4 statistic —
// per-phase max/avg-1 imbalance across ranks — with straggler attribution.
// The transport is the mpi layer's stream-tag channel, flushed at step
// boundaries (internal/sim/observe.go), so the plane never perturbs the
// halo tag epochs.

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// PhaseSample is one rank's per-phase wall-clock accounting of one step:
// the solver phases of the paper's time-step breakdown (DT, RHS/RHSUP, UP,
// ghost_exchange, halo_wait, FWT/ENC/IO on dump steps), in milliseconds.
type PhaseSample struct {
	Step    int                `json:"step"`
	WallMS  float64            `json:"wall_ms"`
	PhaseMS map[string]float64 `json:"phase_ms"`
}

// RankBatch is the unit one rank ships to the collector at a step-boundary
// flush: its new phase samples, the spans drained from its tracer since
// the previous flush (distributed runs only — in-process runs share one
// tracer), and a scalar counter snapshot (net counters, pool gauges).
type RankBatch struct {
	Rank     int                `json:"rank"`
	Steps    []PhaseSample      `json:"steps,omitempty"`
	Spans    []SpanRecord       `json:"spans,omitempty"`
	Counters map[string]float64 `json:"counters,omitempty"`
}

// Encode serializes the batch for the wire.
func (b RankBatch) Encode() []byte {
	data, err := json.Marshal(b)
	if err != nil {
		// Every field is plain data; a marshal failure is a programming error.
		panic(fmt.Sprintf("telemetry: encode rank batch: %v", err))
	}
	return data
}

// DecodeBatch parses a batch encoded with Encode.
func DecodeBatch(data []byte) (RankBatch, error) {
	var b RankBatch
	if err := json.Unmarshal(data, &b); err != nil {
		return b, fmt.Errorf("telemetry: decode rank batch: %w", err)
	}
	return b, nil
}

// ScalarSnapshot flattens a registry's counters and gauges into a plain
// float map (histograms are skipped), the counter payload of a RankBatch.
func ScalarSnapshot(reg *Registry) map[string]float64 {
	snap := reg.Snapshot()
	if len(snap) == 0 {
		return nil
	}
	out := make(map[string]float64, len(snap))
	for k, v := range snap {
		switch x := v.(type) {
		case int64:
			out[k] = float64(x)
		case float64:
			out[k] = x
		}
	}
	return out
}

// waitPhases are the phases that represent time a rank spent waiting on its
// peers rather than computing; the straggler attribution names the largest.
var waitPhases = []string{"halo_wait", "ghost_exchange"}

// Aggregator is the rank-0 collector state: remote spans re-based onto the
// local clock, per-(step, rank) phase samples, per-rank counter snapshots
// and clock offsets. Safe for concurrent use (the crash-flush path may
// write artifacts from a signal goroutine while the step loop feeds it).
type Aggregator struct {
	mu       sync.Mutex
	ranks    int
	offsets  []int64 // peer tracer clock minus rank-0 tracer clock, ns
	synced   []bool
	spans    []SpanRecord
	steps    map[int]map[int]PhaseSample // step -> rank -> sample
	counters []map[string]float64
	missing  int // expected-but-absent rank batches (peer death)
	limit    int
	dropped  int64
}

// NewAggregator returns a collector for a world of the given size.
func NewAggregator(ranks int) *Aggregator {
	if ranks < 1 {
		ranks = 1
	}
	return &Aggregator{
		ranks:    ranks,
		offsets:  make([]int64, ranks),
		synced:   make([]bool, ranks),
		steps:    make(map[int]map[int]PhaseSample),
		counters: make([]map[string]float64, ranks),
		limit:    defaultSpanLimit,
	}
}

// SetClockOffset records the estimated offset (peer tracer clock minus
// rank-0 tracer clock) used to re-base rank's spans at ingest.
func (a *Aggregator) SetClockOffset(rank int, offsetNS int64) {
	if a == nil || rank < 0 || rank >= a.ranks {
		return
	}
	a.mu.Lock()
	a.offsets[rank] = offsetNS
	a.synced[rank] = true
	a.mu.Unlock()
}

// ClockOffset returns the recorded offset for rank and whether a sync ever
// completed for it.
func (a *Aggregator) ClockOffset(rank int) (int64, bool) {
	if a == nil || rank < 0 || rank >= a.ranks {
		return 0, false
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.offsets[rank], a.synced[rank]
}

// AddSample records one rank's phase accounting of one step.
func (a *Aggregator) AddSample(rank int, s PhaseSample) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	a.addSampleLocked(rank, s)
}

func (a *Aggregator) addSampleLocked(rank int, s PhaseSample) {
	byRank := a.steps[s.Step]
	if byRank == nil {
		byRank = make(map[int]PhaseSample, a.ranks)
		a.steps[s.Step] = byRank
	}
	byRank[rank] = s
}

// AddBatch ingests one remote rank's flush: phase samples verbatim, spans
// re-based from the peer's tracer clock onto rank 0's (StartNS - offset),
// counters replacing the previous snapshot.
func (a *Aggregator) AddBatch(b RankBatch) {
	if a == nil {
		return
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	for _, s := range b.Steps {
		a.addSampleLocked(b.Rank, s)
	}
	if len(b.Spans) > 0 {
		var off int64
		if b.Rank >= 0 && b.Rank < a.ranks {
			off = a.offsets[b.Rank]
		}
		for _, rec := range b.Spans {
			if len(a.spans) >= a.limit {
				a.dropped += int64(len(b.Spans))
				break
			}
			rec.StartNS -= off
			a.spans = append(a.spans, rec)
		}
	}
	if b.Counters != nil && b.Rank >= 0 && b.Rank < a.ranks {
		a.counters[b.Rank] = b.Counters
	}
}

// MarkMissing records that an expected rank batch never arrived (a dead
// peer); the imbalance math proceeds over the ranks that did report.
func (a *Aggregator) MarkMissing(rank, step int) {
	if a == nil {
		return
	}
	a.mu.Lock()
	a.missing++
	a.mu.Unlock()
}

// Dropped reports spans discarded after the merge buffer filled.
func (a *Aggregator) Dropped() int64 {
	if a == nil {
		return 0
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.dropped
}

// MergedTrace builds the single cluster-wide Chrome trace: the local spans
// (rank 0's tracer snapshot — in an in-process world that tracer already
// holds every rank's track) merged with all ingested remote spans, which
// were clock-aligned at AddBatch time. One track group (pid) per rank.
func (a *Aggregator) MergedTrace(local []SpanRecord) TraceFile {
	if a == nil {
		return BuildTrace(local)
	}
	a.mu.Lock()
	merged := make([]SpanRecord, 0, len(local)+len(a.spans))
	merged = append(merged, local...)
	merged = append(merged, a.spans...)
	a.mu.Unlock()
	return BuildTrace(merged)
}

// PhaseStat is one phase's cross-rank statistic: the Table-4 imbalance
// percentage max/avg-1 plus the contributing extremes.
type PhaseStat struct {
	AvgMS     float64 `json:"avg_ms"`
	MaxMS     float64 `json:"max_ms"`
	MaxRank   int     `json:"max_rank"`
	Imbalance float64 `json:"imbalance_pct"` // 100*(max/avg - 1); 0 when avg is 0 or one rank
	Ranks     int     `json:"ranks"`         // ranks that reported this phase
}

// StepImbalance is one step's cross-rank breakdown.
type StepImbalance struct {
	Step          int                  `json:"step"`
	Ranks         int                  `json:"ranks"` // ranks that reported this step
	WallImbalance float64              `json:"wall_imbalance_pct"`
	Straggler     int                  `json:"straggler"`
	StragglerWait string               `json:"straggler_wait,omitempty"`
	Phases        map[string]PhaseStat `json:"phases"`
}

// ImbalanceReport is the cluster imbalance report in the shape of the
// paper's Table 4: per-phase max/avg-1 percentages per step and aggregated
// over the run, with straggler attribution.
type ImbalanceReport struct {
	Ranks          int    `json:"ranks"`
	StepsObserved  int    `json:"steps_observed"`
	MissingBatches int    `json:"missing_batches"`
	FirstStep      int    `json:"first_step"`
	LastStep       int    `json:"last_step"`
	// Run aggregates each phase's per-rank cumulative time over the whole
	// observed window.
	Run map[string]PhaseStat `json:"run"`
	// Steps holds the per-step rows in ascending step order.
	Steps []StepImbalance `json:"steps"`
	// Straggler is the rank with the largest cumulative step wall time;
	// StragglerWait names its dominant wait phase and the per-step average
	// milliseconds it spent there.
	Straggler           int     `json:"straggler"`
	StragglerExcessPct  float64 `json:"straggler_excess_pct"` // its wall time over the rank average, percent
	StragglerWait       string  `json:"straggler_wait,omitempty"`
	StragglerWaitAvgMS  float64 `json:"straggler_wait_avg_ms,omitempty"`
	// Counters is the last counter snapshot per rank (distributed runs).
	Counters map[int]map[string]float64 `json:"counters,omitempty"`
}

// maxAvg computes a PhaseStat over per-rank values.
func maxAvg(values map[int]float64) PhaseStat {
	st := PhaseStat{MaxRank: -1}
	if len(values) == 0 {
		return st
	}
	var sum float64
	ranks := make([]int, 0, len(values))
	for r := range values {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks) // deterministic MaxRank on ties
	for _, r := range ranks {
		v := values[r]
		sum += v
		if st.MaxRank < 0 || v > st.MaxMS {
			st.MaxMS = v
			st.MaxRank = r
		}
	}
	st.Ranks = len(values)
	st.AvgMS = sum / float64(len(values))
	if st.AvgMS > 0 && len(values) > 1 {
		st.Imbalance = 100 * (st.MaxMS/st.AvgMS - 1)
	}
	return st
}

// dominantWait returns the wait phase with the largest value in phases,
// falling back to the largest phase overall when no wait phase is present.
func dominantWait(phases map[string]float64) (string, float64) {
	best, bestV := "", 0.0
	for _, p := range waitPhases {
		if v := phases[p]; v > bestV {
			best, bestV = p, v
		}
	}
	if best != "" {
		return best, bestV
	}
	names := make([]string, 0, len(phases))
	for n := range phases {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if v := phases[n]; v > bestV {
			best, bestV = n, v
		}
	}
	return best, bestV
}

// Report assembles the imbalance report from everything ingested so far.
func (a *Aggregator) Report() *ImbalanceReport {
	rep := &ImbalanceReport{
		Run:       map[string]PhaseStat{},
		Straggler: -1,
	}
	if a == nil {
		return rep
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	rep.Ranks = a.ranks
	rep.MissingBatches = a.missing

	stepIDs := make([]int, 0, len(a.steps))
	for s := range a.steps {
		stepIDs = append(stepIDs, s)
	}
	sort.Ints(stepIDs)
	rep.StepsObserved = len(stepIDs)
	if len(stepIDs) > 0 {
		rep.FirstStep, rep.LastStep = stepIDs[0], stepIDs[len(stepIDs)-1]
	}

	// Per-rank cumulative sums over the run, per phase and wall.
	cumPhase := map[string]map[int]float64{}
	cumWall := map[int]float64{}
	cumWaits := map[int]map[string]float64{} // rank -> wait phase -> total
	for _, step := range stepIDs {
		byRank := a.steps[step]
		wall := map[int]float64{}
		phaseVals := map[string]map[int]float64{}
		for r, s := range byRank {
			wall[r] = s.WallMS
			cumWall[r] += s.WallMS
			for p, ms := range s.PhaseMS {
				if phaseVals[p] == nil {
					phaseVals[p] = map[int]float64{}
				}
				phaseVals[p][r] = ms
				if cumPhase[p] == nil {
					cumPhase[p] = map[int]float64{}
				}
				cumPhase[p][r] += ms
			}
			if cumWaits[r] == nil {
				cumWaits[r] = map[string]float64{}
			}
			for _, wp := range waitPhases {
				cumWaits[r][wp] += s.PhaseMS[wp]
			}
		}
		wallStat := maxAvg(wall)
		row := StepImbalance{
			Step:          step,
			Ranks:         len(byRank),
			WallImbalance: wallStat.Imbalance,
			Straggler:     wallStat.MaxRank,
			Phases:        map[string]PhaseStat{},
		}
		for p, vals := range phaseVals {
			row.Phases[p] = maxAvg(vals)
		}
		if s, ok := byRank[wallStat.MaxRank]; ok {
			row.StragglerWait, _ = dominantWait(s.PhaseMS)
		}
		rep.Steps = append(rep.Steps, row)
	}

	for p, vals := range cumPhase {
		rep.Run[p] = maxAvg(vals)
	}
	wallStat := maxAvg(cumWall)
	rep.Straggler = wallStat.MaxRank
	rep.StragglerExcessPct = wallStat.Imbalance
	if rep.Straggler >= 0 && rep.StepsObserved > 0 {
		if waits := cumWaits[rep.Straggler]; waits != nil {
			name, total := dominantWait(waits)
			if name != "" {
				rep.StragglerWait = name
				rep.StragglerWaitAvgMS = total / float64(rep.StepsObserved)
			}
		}
	}

	for r, c := range a.counters {
		if c == nil {
			continue
		}
		if rep.Counters == nil {
			rep.Counters = map[int]map[string]float64{}
		}
		rep.Counters[r] = c
	}
	return rep
}

// phaseOrder lists the well-known phases in the paper's presentation order;
// unknown phases follow alphabetically.
var phaseOrder = []string{
	"DT", "RHS", "UP", "RHSUP", "ghost_exchange", "halo_wait",
	"FWT", "ENC", "IO", "IO_WAVELET",
}

// orderedPhases returns the report's phase names, well-known ones first.
func orderedPhases(m map[string]PhaseStat) []string {
	seen := map[string]bool{}
	var out []string
	for _, p := range phaseOrder {
		if _, ok := m[p]; ok {
			out = append(out, p)
			seen[p] = true
		}
	}
	var rest []string
	for p := range m {
		if !seen[p] {
			rest = append(rest, p)
		}
	}
	sort.Strings(rest)
	return append(out, rest...)
}

// WriteText renders the report as the human-readable Table-4-shaped table.
func (r *ImbalanceReport) WriteText(w io.Writer) error {
	if _, err := fmt.Fprintf(w,
		"Cluster imbalance report — %d ranks, steps %d..%d (%d observed, %d rank-batches missing)\n",
		r.Ranks, r.FirstStep, r.LastStep, r.StepsObserved, r.MissingBatches); err != nil {
		return err
	}
	fmt.Fprintf(w, "%-16s %12s %12s %10s %6s\n", "phase", "avg ms", "max ms", "imb %", "rank")
	for _, p := range orderedPhases(r.Run) {
		st := r.Run[p]
		fmt.Fprintf(w, "%-16s %12.3f %12.3f %10.1f %6d\n",
			p, st.AvgMS, st.MaxMS, st.Imbalance, st.MaxRank)
	}
	if r.Straggler >= 0 {
		fmt.Fprintf(w, "straggler: rank %d — step wall %.1f%% above the rank average",
			r.Straggler, r.StragglerExcessPct)
		if r.StragglerWait != "" {
			fmt.Fprintf(w, "; dominant wait: %s (%.3f ms/step)", r.StragglerWait, r.StragglerWaitAvgMS)
		}
		fmt.Fprintln(w)
	}
	// The worst steps by wall imbalance, so "which step went sideways" has
	// an immediate answer.
	worst := append([]StepImbalance(nil), r.Steps...)
	sort.SliceStable(worst, func(i, j int) bool { return worst[i].WallImbalance > worst[j].WallImbalance })
	n := len(worst)
	if n > 5 {
		n = 5
	}
	if n > 0 && worst[0].WallImbalance > 0 {
		fmt.Fprintf(w, "worst steps by wall imbalance:")
		for _, s := range worst[:n] {
			if s.WallImbalance <= 0 {
				break
			}
			fmt.Fprintf(w, " step %d (%.1f%%, rank %d, %s)", s.Step, s.WallImbalance, s.Straggler, s.StragglerWait)
		}
		fmt.Fprintln(w)
	}
	if len(r.Counters) > 0 {
		ranks := make([]int, 0, len(r.Counters))
		for rk := range r.Counters {
			ranks = append(ranks, rk)
		}
		sort.Ints(ranks)
		for _, rk := range ranks {
			c := r.Counters[rk]
			names := make([]string, 0)
			for n := range c {
				if len(n) >= 9 && n[:9] == "mpcf_net_" {
					names = append(names, n)
				}
			}
			sort.Strings(names)
			if len(names) == 0 {
				continue
			}
			fmt.Fprintf(w, "rank %d net:", rk)
			for _, n := range names {
				fmt.Fprintf(w, " %s=%g", n[9:], c[n])
			}
			fmt.Fprintln(w)
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// WriteJSON renders the report as indented JSON.
func (r *ImbalanceReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
