package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// Tracer records named spans on (rank, worker) tracks and exports them in
// the Chrome trace_event JSON format: ranks map to trace processes (pid),
// workers to threads (tid, 0 being the rank's main goroutine). A nil
// *Tracer is a valid disabled tracer: StartSpan returns a zero Span whose
// End is a no-op, so instrumentation costs one pointer check when off.
type Tracer struct {
	epoch time.Time

	mu      sync.Mutex
	events  []spanEvent
	limit   int
	dropped int64
}

// spanEvent is one completed span, stored relative to the tracer epoch.
type spanEvent struct {
	name         string
	rank, worker int32
	start, dur   time.Duration
}

// defaultSpanLimit bounds the in-memory event buffer; beyond it spans are
// counted as dropped rather than growing without bound.
const defaultSpanLimit = 1 << 21

// NewTracer returns an enabled tracer whose timeline starts now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now(), limit: defaultSpanLimit}
}

// SetLimit caps the number of buffered spans (0 restores the default).
func (t *Tracer) SetLimit(n int) {
	if t == nil {
		return
	}
	if n <= 0 {
		n = defaultSpanLimit
	}
	t.mu.Lock()
	t.limit = n
	t.mu.Unlock()
}

// Span is an in-flight span; End records it. The zero Span is inert.
type Span struct {
	t            *Tracer
	name         string
	rank, worker int32
	start        time.Time
}

// StartSpan opens a span named name on the (rank, worker) track. Worker 0
// is the rank's main goroutine; worker pools use 1..W.
func (t *Tracer) StartSpan(name string, rank, worker int) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, rank: int32(rank), worker: int32(worker), start: time.Now()}
}

// End completes the span and buffers it for export.
func (s Span) End() {
	if s.t == nil {
		return
	}
	dur := time.Since(s.start)
	t := s.t
	ev := spanEvent{name: s.name, rank: s.rank, worker: s.worker,
		start: s.start.Sub(t.epoch), dur: dur}
	t.mu.Lock()
	if len(t.events) >= t.limit {
		t.dropped++
	} else {
		t.events = append(t.events, ev)
	}
	t.mu.Unlock()
}

// Dropped reports how many spans were discarded after the buffer filled.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Len reports the number of buffered spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// SpanRecord is one completed span in transportable form: timestamps are
// nanoseconds since the recording tracer's epoch. It is the exchange unit
// of the cross-rank observatory — remote ranks drain their tracer into
// records, ship them to rank 0, and the aggregator re-bases StartNS onto
// rank 0's clock before merging (see observatory.go).
type SpanRecord struct {
	Name    string `json:"name"`
	Rank    int32  `json:"rank"`
	Worker  int32  `json:"worker"`
	StartNS int64  `json:"start_ns"`
	DurNS   int64  `json:"dur_ns"`
}

// Now returns the current time on this tracer's clock (nanoseconds since
// its epoch) — the clock basis of every SpanRecord it emits. The
// clock-offset handshake exchanges these values across ranks.
func (t *Tracer) Now() int64 {
	if t == nil {
		return 0
	}
	return int64(time.Since(t.epoch))
}

// Records snapshots the buffered spans as SpanRecords without removing
// them.
func (t *Tracer) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return toRecords(t.events)
}

// Drain removes and returns the buffered spans as SpanRecords. Remote ranks
// of a distributed run drain at every observatory flush, so the local
// buffer stays small and each batch carries only new spans. The dropped
// counter is cumulative and unaffected.
func (t *Tracer) Drain() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	recs := toRecords(t.events)
	t.events = t.events[:0]
	return recs
}

func toRecords(events []spanEvent) []SpanRecord {
	if len(events) == 0 {
		return nil
	}
	recs := make([]SpanRecord, len(events))
	for i, ev := range events {
		recs[i] = SpanRecord{
			Name: ev.name, Rank: ev.rank, Worker: ev.worker,
			StartNS: int64(ev.start), DurNS: int64(ev.dur),
		}
	}
	return recs
}

// TraceEvent is one entry of the exported trace_event array. Complete
// spans use ph "X" with microsecond ts/dur; track names use ph "M".
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceFile is the exported JSON object, loadable by chrome://tracing and
// Perfetto.
type TraceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit,omitempty"`
}

// Export snapshots the buffered spans as a TraceFile. Events are sorted by
// (pid, tid, ts) so timestamps are monotonic within each track, and each
// track carries process/thread-name metadata.
func (t *Tracer) Export() TraceFile {
	return BuildTrace(t.Records())
}

// BuildTrace renders span records as a TraceFile: ranks map to trace
// processes (pid), workers to threads (tid), events are sorted by
// (pid, tid, ts) so timestamps are monotonic within each track, and each
// track carries process/thread-name metadata. The records may come from one
// tracer (Export) or from many ranks' tracers merged onto a common clock
// (the observatory's merged trace).
func BuildTrace(records []SpanRecord) TraceFile {
	if len(records) == 0 {
		return TraceFile{TraceEvents: []TraceEvent{}, DisplayTimeUnit: "ms"}
	}
	events := make([]SpanRecord, len(records))
	copy(events, records)
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if a.Rank != b.Rank {
			return a.Rank < b.Rank
		}
		if a.Worker != b.Worker {
			return a.Worker < b.Worker
		}
		return a.StartNS < b.StartNS
	})

	type track struct{ pid, tid int32 }
	seen := map[track]bool{}
	out := TraceFile{DisplayTimeUnit: "ms"}
	var meta []TraceEvent
	for _, ev := range events {
		tr := track{ev.Rank, ev.Worker}
		if !seen[tr] {
			seen[tr] = true
			if ev.Worker == 0 {
				meta = append(meta, TraceEvent{
					Name: "process_name", Ph: "M", PID: int(ev.Rank), TID: 0,
					Args: map[string]any{"name": fmt.Sprintf("rank %d", ev.Rank)},
				})
				meta = append(meta, TraceEvent{
					Name: "thread_name", Ph: "M", PID: int(ev.Rank), TID: 0,
					Args: map[string]any{"name": "main"},
				})
			} else {
				meta = append(meta, TraceEvent{
					Name: "thread_name", Ph: "M", PID: int(ev.Rank), TID: int(ev.Worker),
					Args: map[string]any{"name": fmt.Sprintf("worker %d", ev.Worker)},
				})
			}
		}
		out.TraceEvents = append(out.TraceEvents, TraceEvent{
			Name: ev.Name, Cat: "solver", Ph: "X",
			TS:  float64(ev.StartNS) / 1e3,
			Dur: float64(ev.DurNS) / 1e3,
			PID: int(ev.Rank), TID: int(ev.Worker),
		})
	}
	out.TraceEvents = append(meta, out.TraceEvents...)
	return out
}

// Write writes the trace JSON to w.
func (t *Tracer) Write(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(t.Export())
}

// WriteFile writes the trace JSON to path.
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
