package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func serviceBaseline() BenchServiceResult {
	return BenchServiceResult{
		Scenario: "shockbubble", BlockSize: 8, BlockDims: [3]int{2, 2, 2},
		Steps: 4, Workers: 2, Jobs: 6, Tenants: 3, Subscribers: 3,
		JobsSucceeded: 6, StreamsComplete: 18,
		SubmitToFirstStep: BenchSimLatency{MeanMS: 40, P50MS: 35, P90MS: 60, MaxMS: 80},
		SubmitToDone:      BenchSimLatency{MeanMS: 400, P50MS: 390, P90MS: 520, MaxMS: 600},
		WallSeconds:       1.2, JobsPerMinute: 300,
	}
}

func TestCompareServiceIdenticalPasses(t *testing.T) {
	r := CompareBenchService(serviceBaseline(), serviceBaseline(), DefaultThresholds(1))
	if !r.OK() {
		t.Fatalf("identical records regressed: %v", r.Regressions)
	}
	if r.Checks == 0 {
		t.Fatal("no checks performed")
	}
}

func TestCompareServiceStructuralIsExact(t *testing.T) {
	fresh := serviceBaseline()
	fresh.JobsSucceeded = 5 // one job failed
	r := CompareBenchService(serviceBaseline(), fresh, DefaultThresholds(1))
	if r.OK() {
		t.Fatal("a failed job passed the gate")
	}
	if !strings.Contains(strings.Join(r.Regressions, "\n"), "jobs_succeeded") {
		t.Fatalf("regression does not name jobs_succeeded: %v", r.Regressions)
	}

	fresh = serviceBaseline()
	fresh.StreamsComplete = 17 // one subscriber stream truncated
	if r := CompareBenchService(serviceBaseline(), fresh, DefaultThresholds(1)); r.OK() {
		t.Fatal("a truncated subscriber stream passed the gate")
	}
}

func TestCompareServiceRatesAreGenerous(t *testing.T) {
	fresh := serviceBaseline()
	fresh.JobsPerMinute *= 0.6            // above the 0.4 floor
	fresh.SubmitToFirstStep.MeanMS *= 2.0 // below the 2.5 ceiling
	fresh.SubmitToDone.MeanMS *= 2.0
	r := CompareBenchService(serviceBaseline(), fresh, DefaultThresholds(1))
	if !r.OK() {
		t.Fatalf("machine noise failed the gate: %v", r.Regressions)
	}
	fresh = serviceBaseline()
	fresh.JobsPerMinute *= 0.2 // a real throughput collapse
	if r := CompareBenchService(serviceBaseline(), fresh, DefaultThresholds(1)); r.OK() {
		t.Fatal("5x throughput collapse passed the gate")
	}
}

func TestCompareServiceConfigMismatch(t *testing.T) {
	fresh := serviceBaseline()
	fresh.Jobs = 8
	fresh.JobsSucceeded = 8
	r := CompareBenchService(serviceBaseline(), fresh, DefaultThresholds(1))
	if r.OK() {
		t.Fatal("job-count mismatch passed")
	}
	if !strings.Contains(r.Regressions[0], "configuration mismatch") {
		t.Fatalf("unexpected failure message: %v", r.Regressions)
	}
}

func TestDetectBenchKindService(t *testing.T) {
	data, err := json.Marshal(serviceBaseline())
	if err != nil {
		t.Fatal(err)
	}
	kind, err := DetectBenchKind(data)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "service" {
		t.Fatalf("kind = %q, want service", kind)
	}
}

func TestCompareServiceFiles(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	freshPath := filepath.Join(dir, "fresh.json")
	if err := WriteBenchServiceJSON(basePath, serviceBaseline()); err != nil {
		t.Fatal(err)
	}
	fresh := serviceBaseline()
	fresh.StreamsComplete = 12
	if err := WriteBenchServiceJSON(freshPath, fresh); err != nil {
		t.Fatal(err)
	}
	r, err := CompareBenchFiles(basePath, freshPath, DefaultThresholds(1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != "service" {
		t.Fatalf("kind = %q, want service", r.Kind)
	}
	if r.OK() {
		t.Fatal("six missing subscriber streams passed")
	}
}

// TestRunBenchService exercises the live experiment at a tiny configuration:
// two jobs, two subscribers, one worker. Every structural invariant the gate
// holds on the committed baseline must hold here too.
func TestRunBenchService(t *testing.T) {
	res, err := RunBenchService([3]int{2, 2, 2}, 8, 3, 2, 2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.JobsSucceeded != 2 {
		t.Fatalf("%d/2 jobs succeeded", res.JobsSucceeded)
	}
	if res.StreamsComplete != 4 {
		t.Fatalf("%d/4 subscriber streams complete", res.StreamsComplete)
	}
	if res.JobsPerMinute <= 0 {
		t.Fatalf("jobs/min = %v", res.JobsPerMinute)
	}
	if res.SubmitToDone.MeanMS <= 0 {
		t.Fatalf("submit->done mean = %v", res.SubmitToDone.MeanMS)
	}
}

// TestCommittedServiceBaselineParses guards the checked-in baseline: it must
// detect as a service record and hold the all-jobs-succeeded,
// all-streams-complete invariants the CI compare reruns against.
func TestCommittedServiceBaselineParses(t *testing.T) {
	data, err := os.ReadFile("../../bench/BENCH_service.json")
	if err != nil {
		t.Skipf("no committed baseline: %v", err)
	}
	kind, err := DetectBenchKind(data)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "service" {
		t.Fatalf("kind = %q, want service", kind)
	}
	var res BenchServiceResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Jobs == 0 || res.JobsSucceeded != res.Jobs ||
		res.StreamsComplete != res.Jobs*res.Subscribers {
		t.Fatalf("baseline incomplete or non-clean: %+v", res)
	}
}
