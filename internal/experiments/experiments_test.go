package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

const quick = 50 * time.Millisecond

func TestTable3Output(t *testing.T) {
	var b bytes.Buffer
	Table3(&b, 16)
	out := b.String()
	for _, want := range []string{"Table 3", "Naive", "Reordered", "Factor", "ridge"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestTable4ImbalanceShape(t *testing.T) {
	var b bytes.Buffer
	res := Table4(&b, 16)
	// The statistics must be non-negative and finite; with few workers on a
	// homogeneous field, imbalance can legitimately be small.
	for _, v := range []float64{res.DecG, res.EncG, res.IOG, res.DecP, res.EncP, res.IOP} {
		if v < 0 || v > 1000 {
			t.Errorf("implausible imbalance %g", v)
		}
	}
}

func TestTable8Output(t *testing.T) {
	var b bytes.Buffer
	Table8(&b, 16)
	for _, want := range []string{"CONV", "WENO", "HLLE", "SUM", "BACK", "ALL"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("missing stage %q", want)
		}
	}
}

func TestMeasureKernelsPositive(t *testing.T) {
	if v := MeasureRHS(8, false, false, quick); v <= 0 {
		t.Errorf("scalar RHS rate %g", v)
	}
	if v := MeasureRHS(8, true, false, quick); v <= 0 {
		t.Errorf("vector RHS rate %g", v)
	}
	if v := MeasureDT(8, false, quick); v <= 0 {
		t.Errorf("DT rate %g", v)
	}
	if v := MeasureUP(8, true, quick); v <= 0 {
		t.Errorf("UP rate %g", v)
	}
}

func TestKernelRateCounts(t *testing.T) {
	calls := 0
	rate := KernelRate(1e6, 10*time.Millisecond, func() {
		calls++
		time.Sleep(time.Millisecond)
	})
	if calls < 2 {
		t.Errorf("too few calls: %d", calls)
	}
	if rate <= 0 {
		t.Errorf("rate %g", rate)
	}
}

func TestCompressionExperimentRuns(t *testing.T) {
	var b bytes.Buffer
	Compression(&b, 16)
	if !strings.Contains(b.String(), "Gamma") && !strings.Contains(b.String(), "G") {
		t.Errorf("missing gamma row:\n%s", b.String())
	}
}

func TestFig5SeriesPhysical(t *testing.T) {
	if testing.Short() {
		t.Skip("simulation-driven experiment")
	}
	var b bytes.Buffer
	Fig5(&b, 15)
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	var dataLines int
	for _, l := range lines {
		if strings.Count(l, ",") == 4 && !strings.Contains(l, "time,") {
			dataLines++
		}
	}
	if dataLines < 2 {
		t.Errorf("expected CSV series, got:\n%s", b.String())
	}
}
