package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	for _, tc := range []struct {
		p    float64
		want float64
	}{{0.5, 5}, {0.9, 9}, {0.99, 10}, {1, 10}} {
		if got := percentile(xs, tc.p); got != tc.want {
			t.Errorf("percentile(%.2f) = %v, want %v", tc.p, got, tc.want)
		}
	}
	if got := percentile(nil, 0.5); got != 0 {
		t.Errorf("percentile of empty = %v, want 0", got)
	}
}

func TestBenchSimJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_sim.json")
	var buf bytes.Buffer
	BenchSim(&buf, 8, 3, path, true)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var res BenchSimResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatalf("BENCH_sim.json is not valid JSON: %v", err)
	}
	if res.Steps != 3 || res.BlockSize != 8 {
		t.Errorf("steps=%d block=%d, want 3/8", res.Steps, res.BlockSize)
	}
	if !res.Pipeline {
		t.Error("primary run should be the pipeline mode")
	}
	if res.StepLatency.P50MS <= 0 || res.StepLatency.MaxMS < res.StepLatency.P50MS {
		t.Errorf("step latency percentiles malformed: %+v", res.StepLatency)
	}
	// The pipelined primary run records the fused RHSUP kernel plus DT.
	for _, k := range []string{"RHSUP", "DT"} {
		st, ok := res.Kernels[k]
		if !ok || st.Calls == 0 || st.GFLOPS <= 0 {
			t.Errorf("kernel %s missing or empty: %+v", k, st)
		}
	}
	if res.PointsPerSec <= 0 || res.GlobalCells == 0 {
		t.Errorf("throughput fields empty: %+v", res)
	}
	if len(res.Modes) != 2 {
		t.Fatalf("want staged+fused mode rows, got %d", len(res.Modes))
	}
	staged, fused := res.Modes[0], res.Modes[1]
	if staged.Pipeline || !fused.Pipeline {
		t.Errorf("mode order wrong: %+v", res.Modes)
	}
	if fused.StageBytesPerCell >= staged.StageBytesPerCell {
		t.Errorf("fusion should reduce stage traffic: fused %d >= staged %d",
			fused.StageBytesPerCell, staged.StageBytesPerCell)
	}
	if fused.UPBytesPerValue >= staged.UPBytesPerValue {
		t.Errorf("fusion should reduce UP traffic: fused %d >= staged %d",
			fused.UPBytesPerValue, staged.UPBytesPerValue)
	}
	for _, m := range res.Modes {
		if m.PoolWorkers <= 0 || m.WorkerSpawns != int64(m.PoolWorkers) {
			t.Errorf("pool workers should be spawned exactly once: %+v", m)
		}
		if m.StepLatency.MeanMS <= 0 {
			t.Errorf("mode latency empty: %+v", m)
		}
	}
	if !bytes.Contains(buf.Bytes(), []byte("step latency ms")) {
		t.Error("human report missing latency line")
	}
	if !bytes.Contains(buf.Bytes(), []byte("fused")) || !bytes.Contains(buf.Bytes(), []byte("staged")) {
		t.Error("human report missing fused-vs-staged rows")
	}
}
