// Package experiments regenerates every table and figure of the paper's
// evaluation (§7-8). Each experiment prints the same rows/series the paper
// reports, next to the paper's published values where applicable, so the
// *shape* of the results (who wins, by what factor, where the bottleneck
// sits) can be compared directly.
//
// The hardware substitutions are documented in DESIGN.md: kernels run on
// the host CPU instead of Blue Gene/Q, so absolute GFLOP/s differ; rack
// scaling (Tables 5-6) combines host-measured kernel efficiency with the
// paper's machine models (roofline + analytic communication volumes); the
// QPX speedups (Table 7) are reported both as measured on the 4-lane model
// (serial lanes) and as the modeled hardware-SIMD projection.
package experiments

import (
	"fmt"
	"io"
	"math"
	"time"

	"cubism/internal/cloud"
	"cubism/internal/core"
	"cubism/internal/grid"
	"cubism/internal/physics"
)

// blockEdge is the default benchmark block size. The paper's production
// value is 32; 16 keeps the harness fast while preserving every ratio (set
// -n 32 in cmd/mpcf-bench for the production size).
const blockEdge = 16

// testField is a smooth but fully 3D two-phase-like state that exercises
// every code path of the kernels.
func testField(x, y, z float64) physics.Prim {
	s := math.Sin(2 * math.Pi * x)
	c := math.Cos(2 * math.Pi * y)
	t := math.Sin(2 * math.Pi * z)
	return physics.Prim{
		Rho: 500 + 400*s*c,
		U:   10 * c * t,
		V:   -5 * s * t,
		W:   7 * s * c,
		P:   50e5 + 30e5*c*t,
		G:   1.5 + 1.0*s*t,
		Pi:  2e8 + 1e8*c,
	}
}

// fillGrid initializes a grid from a primitive field.
func fillGrid(g *grid.Grid, f func(x, y, z float64) physics.Prim) {
	n := g.N
	for _, b := range g.Blocks {
		for iz := 0; iz < n; iz++ {
			for iy := 0; iy < n; iy++ {
				for ix := 0; ix < n; ix++ {
					x, y, z := g.CellCenter(b.X*n+ix, b.Y*n+iy, b.Z*n+iz)
					c := f(x, y, z).ToCons()
					cell := b.At(ix, iy, iz)
					cell[physics.QR] = float32(c.R)
					cell[physics.QU] = float32(c.RU)
					cell[physics.QV] = float32(c.RV)
					cell[physics.QW] = float32(c.RW)
					cell[physics.QE] = float32(c.E)
					cell[physics.QG] = float32(c.G)
					cell[physics.QP] = float32(c.Pi)
				}
			}
		}
	}
}

// cloudGrid builds a static bubble-cloud snapshot for compression
// experiments.
func cloudGrid(n, nb int, seed int64) *grid.Grid {
	bubbles, err := (cloud.Spec{
		Center: [3]float64{0.5, 0.5, 0.5},
		Radius: 0.35,
		N:      10,
		RMin:   0.05, RMax: 0.1,
		Seed: seed,
	}).Generate()
	if err != nil {
		panic(err)
	}
	f := cloud.NewField(bubbles, 0.02)
	g := grid.New(grid.Desc{N: n, NBX: nb, NBY: nb, NBZ: nb, H: 1.0 / float64(n*nb)})
	fillGrid(g, f.At)
	return g
}

// KernelRate measures one kernel's sustained GFLOP/s by repeated execution
// over at least minDuration.
func KernelRate(flopsPerCall int64, minDuration time.Duration, call func()) float64 {
	call() // warm-up
	var calls int64
	start := time.Now()
	for time.Since(start) < minDuration {
		call()
		calls++
	}
	elapsed := time.Since(start).Seconds()
	return float64(flopsPerCall*calls) / elapsed / 1e9
}

// MeasureRHS returns the sustained GFLOP/s of one RHS evaluation over a
// single block (vector or scalar, fused or staged).
func MeasureRHS(n int, vector, staged bool, minDur time.Duration) float64 {
	g := grid.New(grid.Desc{N: n, NBX: 1, NBY: 1, NBZ: 1, H: 1.0 / float64(n)})
	fillGrid(g, testField)
	lab := grid.NewLab(n)
	lab.Load(g, grid.PeriodicBC(), g.Blocks[0])
	out := make([]float32, n*n*n*physics.NQ)
	flops := int64(n*n*n) * core.RHSFlopsPerCell(n)
	if vector {
		r := core.NewRHSVec(n)
		r.Staged = staged
		return KernelRate(flops, minDur, func() { r.Compute(lab, g.H, out) })
	}
	r := core.NewRHS(n)
	r.Staged = staged
	return KernelRate(flops, minDur, func() { r.Compute(lab, g.H, out) })
}

// MeasureDT returns the sustained GFLOP/s of the SOS kernel on one block.
func MeasureDT(n int, vector bool, minDur time.Duration) float64 {
	g := grid.New(grid.Desc{N: n, NBX: 1, NBY: 1, NBZ: 1, H: 1.0 / float64(n)})
	fillGrid(g, testField)
	data := g.Blocks[0].Data
	flops := int64(n*n*n) * core.SOSFlopsPerCell
	var sink float64
	f := func() { sink += core.MaxCharVelScalar(data) }
	if vector {
		f = func() { sink += core.MaxCharVelQPX(data) }
	}
	r := KernelRate(flops, minDur, f)
	if sink < 0 {
		panic("unreachable")
	}
	return r
}

// MeasureUP returns the sustained GFLOP/s of the UP kernel on one block.
func MeasureUP(n int, vector bool, minDur time.Duration) float64 {
	values := n * n * n * physics.NQ
	u := make([]float32, values)
	reg := make([]float32, values)
	rhs := make([]float32, values)
	for i := range u {
		u[i] = float32(i%7) + 1
		rhs[i] = float32(i%5) - 2
	}
	flops := int64(values) * core.UpdateFlopsPerValue
	f := func() { core.UpdateScalar(u, reg, rhs, -5.0/9.0, 15.0/16.0, 1e-6) }
	if vector {
		f = func() { core.UpdateQPX(u, reg, rhs, -5.0/9.0, 15.0/16.0, 1e-6) }
	}
	return KernelRate(flops, minDur, f)
}

// line writes a formatted row.
func line(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format+"\n", args...)
}

// header prints an experiment banner.
func header(w io.Writer, title string) {
	line(w, "")
	line(w, "=== %s ===", title)
}
