package experiments

// The I/O-pipeline benchmark: run the ENC stage (wavelet transform,
// decimation, lossless entropy coding) serially and across the node
// engine's persistent worker pool on the same bubble-cloud snapshot, prove
// the two produce bitwise-identical streams, record the Table-4-shaped
// per-worker ENC imbalance the parallel pipeline actually exhibits, and
// ship one frame through the TagDump stream of a two-rank world to assert
// the assembled frame matches the collective writer's file bit for bit.
// The record (BENCH_io.json) pins the structural invariants exactly —
// encoded sizes of the deterministic coders, bitwise equality, frame
// identity — and gates the rates generously.

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"time"

	"cubism/internal/compress"
	"cubism/internal/dump"
	"cubism/internal/grid"
	"cubism/internal/mpi"
	"cubism/internal/node"
)

// BenchIOEncoder is one encoder's row of the I/O-pipeline record.
type BenchIOEncoder struct {
	Encoder string `json:"encoder"`
	// Deterministic marks coders whose output bytes are a pure function of
	// the input (rle, sig, huff): their encoded size is pinned exactly by
	// the gate. zlib's bytes may shift across Go releases, so only its
	// round trip and bitwise serial/parallel equality are held.
	Deterministic bool  `json:"deterministic"`
	EncodedBytes  int64 `json:"encoded_bytes"`
	// ParallelBitwise: every per-block stream of the pool run equals the
	// serial run's byte for byte.
	ParallelBitwise bool `json:"parallel_bitwise"`
	// Lossless: the parallel output decodes and reconstructs every block.
	Lossless bool    `json:"lossless"`
	Ratio    float64 `json:"ratio"`
	EncMBps  float64 `json:"enc_mbps"`
	// ENCImbalance is the Table-4 statistic (tmax-tmin)/tavg over the
	// per-worker ENC times of the pool run — measurable here, unlike on
	// the serial host the paper's caveat used to apply to.
	ENCImbalance float64 `json:"enc_imbalance"`
	DECImbalance float64 `json:"dec_imbalance"`
}

// BenchIOResult is the machine-readable record of the I/O-pipeline
// experiment (BENCH_io.json). The "enc_pipeline" key (the ENC pool width)
// doubles as the kind discriminator for DetectBenchKind, like "kernels"
// (sim), "transports" (net), "observables" (cloud) and "service_jobs"
// (service).
type BenchIOResult struct {
	Workers   int     `json:"enc_pipeline"` // kind discriminator: pool width
	BlockSize int     `json:"block_size"`
	Blocks    int     `json:"blocks"`
	Epsilon   float64 `json:"epsilon"`

	Encoders []BenchIOEncoder `json:"encoders"`

	// Frame-stream leg: a two-rank world writes the collective file and
	// streams the same state over TagDump; the assembled frame must be the
	// file, bitwise.
	StreamRanks      int   `json:"stream_ranks"`
	FrameMatchesFile bool  `json:"frame_matches_file"`
	FrameBytes       int64 `json:"frame_bytes"`

	WallSeconds float64 `json:"wall_seconds"`
}

// benchIOEncoders lists the coders the experiment sweeps; deterministic
// marks the ones whose encoded bytes the gate pins exactly.
var benchIOEncoders = []struct {
	name          string
	deterministic bool
}{
	{"zlib", false},
	{"rle", true},
	{"sig", true},
	{"huff", true},
}

// RunBenchIO executes the experiment at block edge n with the given ENC
// pool width. Zero arguments take the benchmark defaults (16³ blocks,
// 4 workers — a fixed width so the imbalance row is comparable across
// machines).
func RunBenchIO(n, workers int) (BenchIOResult, error) {
	if n == 0 {
		n = 16
	}
	if workers == 0 {
		workers = 4
	}
	const eps = 1e-2
	g := cloudGrid(n, 64/n, 7)
	eng := node.New(g, grid.PeriodicBC(), workers, false)
	defer eng.Close()

	res := BenchIOResult{
		Workers: workers, BlockSize: n, Blocks: len(g.Blocks), Epsilon: eps,
	}
	start := time.Now()
	for _, e := range benchIOEncoders {
		serial, _, err := compress.Compress(g, compress.Pressure, compress.Options{
			Epsilon: eps, Encoder: e.name, Workers: 1,
		})
		if err != nil {
			return res, err
		}
		t0 := time.Now()
		par, st, err := compress.Compress(g, compress.Pressure, compress.Options{
			Epsilon: eps, Encoder: e.name,
			Workers: eng.Workers(), Parallel: eng.Parallel,
		})
		if err != nil {
			return res, err
		}
		encWall := time.Since(t0).Seconds()
		row := BenchIOEncoder{
			Encoder: e.name, Deterministic: e.deterministic,
			EncodedBytes: st.Encoded, Ratio: st.Rate(),
			ENCImbalance: compress.Imbalance(st.EncTimes),
			DECImbalance: compress.Imbalance(st.DecTimes),
		}
		if encWall > 0 {
			row.EncMBps = float64(st.RawBytes) / encWall / 1e6
		}
		row.ParallelBitwise = len(par.Streams) == len(serial.Streams)
		for i := range par.Streams {
			if !row.ParallelBitwise || !bytes.Equal(par.Streams[i], serial.Streams[i]) {
				row.ParallelBitwise = false
				break
			}
		}
		if fields, err := par.Decompress(); err == nil && len(fields) == par.Blocks {
			row.Lossless = true
		}
		res.Encoders = append(res.Encoders, row)
	}

	match, frameBytes, err := runBenchIOStream(n)
	if err != nil {
		return res, err
	}
	res.StreamRanks = 2
	res.FrameMatchesFile = match
	res.FrameBytes = frameBytes
	res.WallSeconds = time.Since(start).Seconds()
	return res, nil
}

// runBenchIOStream runs the frame-stream leg: a two-rank inproc world
// writes the collective dump file and streams the same compressed state
// over the TagDump channel; returns whether the assembled frame equals the
// file bitwise, and the frame size.
func runBenchIOStream(n int) (bool, int64, error) {
	dir, err := os.MkdirTemp("", "mpcf-bench-io-")
	if err != nil {
		return false, 0, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "p.mpcf")
	nb := 64 / n

	var frame dump.Frame
	var runErr error
	world := mpi.NewWorld(2)
	world.Run(func(comm *mpi.Comm) {
		g := cloudGrid(n, nb, int64(7+comm.Rank()))
		c, _, err := compress.Compress(g, compress.Pressure, compress.Options{
			Epsilon: 1e-2, Encoder: "huff", Workers: 2,
		})
		if err != nil {
			runErr = err
			return
		}
		ids := make([]int64, len(g.Blocks))
		for i := range ids {
			ids[i] = int64(comm.Rank()*len(ids) + i)
		}
		hdr := dump.Header{
			Quantity: "p", Encoder: "huff", Epsilon: 1e-2, BlockSize: n,
			RankDims: [3]int{2, 1, 1}, BlockDims: [3]int{nb, nb, nb},
			Step: 1, Time: 1e-3,
		}
		if _, err := dump.WriteCollective(comm, path, hdr, c, ids); err != nil {
			runErr = err
			return
		}
		var sink dump.FrameSink
		if comm.Rank() == 0 {
			sink = func(f dump.Frame) error {
				frame = f
				return nil
			}
		}
		if _, err := dump.StreamCollective(comm, 0, hdr, c, ids, sink); err != nil {
			runErr = err
		}
	})
	if runErr != nil {
		return false, 0, runErr
	}
	fileBytes, err := os.ReadFile(path)
	if err != nil {
		return false, 0, err
	}
	return bytes.Equal(frame.Data, fileBytes), int64(len(frame.Data)), nil
}

// CompareBenchIO diffs a fresh I/O-pipeline record against the baseline.
// The structural invariants — bitwise serial/parallel equality, lossless
// round trips, frame-equals-file, and the deterministic coders' encoded
// sizes — are exact; the throughput rates use the generous machine
// thresholds; the imbalance row only has to stay a sane statistic (the
// magnitude is scheduling noise on a shared runner).
func CompareBenchIO(base, fresh BenchIOResult, th CompareThresholds) *CompareReport {
	r := &CompareReport{Kind: "io"}
	if base.BlockSize != fresh.BlockSize || base.Blocks != fresh.Blocks ||
		base.Workers != fresh.Workers || base.Epsilon != fresh.Epsilon {
		r.fail("configuration mismatch: baseline N=%d blocks=%d workers=%d eps=%g, fresh N=%d blocks=%d workers=%d eps=%g — regenerate the baseline (make bench-snapshot)",
			base.BlockSize, base.Blocks, base.Workers, base.Epsilon,
			fresh.BlockSize, fresh.Blocks, fresh.Workers, fresh.Epsilon)
		return r
	}
	baseRows := map[string]BenchIOEncoder{}
	for _, row := range base.Encoders {
		baseRows[row.Encoder] = row
	}
	for _, row := range fresh.Encoders {
		b, ok := baseRows[row.Encoder]
		if !ok {
			r.note("encoder %s not in baseline, skipped", row.Encoder)
			continue
		}
		delete(baseRows, row.Encoder)
		r.checkExact(row.Encoder+" parallel_bitwise", b2i(b.ParallelBitwise), b2i(row.ParallelBitwise))
		r.checkExact(row.Encoder+" lossless", b2i(b.Lossless), b2i(row.Lossless))
		if b.Deterministic {
			r.checkExact(row.Encoder+" encoded_bytes", b.EncodedBytes, row.EncodedBytes)
		}
		r.checkMin(row.Encoder+" enc_mbps", b.EncMBps, row.EncMBps, th.MinRateFrac)
		r.Checks++
		if row.ENCImbalance < 0 {
			r.fail("%s enc_imbalance %g is negative — not a (tmax-tmin)/tavg statistic",
				row.Encoder, row.ENCImbalance)
		}
	}
	for name := range baseRows {
		r.Checks++
		r.fail("encoder %s present in baseline but absent from fresh run", name)
	}
	r.checkExact("stream_ranks", int64(base.StreamRanks), int64(fresh.StreamRanks))
	r.checkExact("frame_matches_file", b2i(base.FrameMatchesFile), b2i(fresh.FrameMatchesFile))
	r.checkExact("frame_bytes", base.FrameBytes, fresh.FrameBytes)
	return r
}

// b2i maps a structural boolean onto checkExact's integer domain.
func b2i(v bool) int64 {
	if v {
		return 1
	}
	return 0
}

// BenchIO runs the I/O-pipeline experiment, prints the human summary and
// writes BENCH_io.json (skipped when jsonPath is empty).
func BenchIO(w io.Writer, n int, jsonPath string) {
	header(w, "ENC pipeline benchmark: parallel encode + frame stream")
	res, err := RunBenchIO(n, 0)
	if err != nil {
		panic(err)
	}
	line(w, "N=%d, %d blocks, eps=%g, %d ENC workers", res.BlockSize, res.Blocks, res.Epsilon, res.Workers)
	for _, row := range res.Encoders {
		line(w, "%-5s %9d B  ratio %6.2f:1  %8.1f MB/s  bitwise=%v lossless=%v  ENC imb %.2f  DEC imb %.2f",
			row.Encoder, row.EncodedBytes, row.Ratio, row.EncMBps,
			row.ParallelBitwise, row.Lossless, row.ENCImbalance, row.DECImbalance)
	}
	line(w, "frame stream (%d ranks): frame==file %v, %d bytes",
		res.StreamRanks, res.FrameMatchesFile, res.FrameBytes)
	line(w, "wall %.2fs", res.WallSeconds)
	if jsonPath == "" {
		return
	}
	if err := WriteBenchIOJSON(jsonPath, res); err != nil {
		panic(err)
	}
	line(w, "wrote %s", jsonPath)
}

// WriteBenchIOJSON writes the record as indented JSON.
func WriteBenchIOJSON(path string, res BenchIOResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
