package experiments

// The service benchmark: stand the simulation-as-a-service front end up
// in-process, push a batch of smoke-scenario jobs through the multi-tenant
// queue over the real HTTP API, and stream every job to several concurrent
// subscribers. The record (BENCH_service.json) captures the service-path
// overheads the paper's production runs never see but a shared front end
// lives or dies by: submit-to-first-step latency through queue + engine
// startup, end-to-end jobs/minute, and the structural invariants (every
// job succeeds, every subscriber stream is complete and well-ordered).

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sync"
	"time"

	"cubism/internal/service"
	"cubism/internal/telemetry"
)

// BenchServiceResult is the machine-readable record of the service
// experiment (BENCH_service.json). The "service_jobs" key doubles as the
// kind discriminator for DetectBenchKind, like "kernels" (sim),
// "transports" (net) and "observables" (cloud).
type BenchServiceResult struct {
	Scenario    string `json:"scenario"`
	BlockSize   int    `json:"block_size"`
	BlockDims   [3]int `json:"block_dims"`
	Steps       int    `json:"steps"`
	Workers     int    `json:"service_workers"`
	Jobs        int    `json:"service_jobs"` // kind discriminator
	Tenants     int    `json:"tenants"`
	Subscribers int    `json:"subscribers_per_job"`

	// Structural outcomes: machine-independent, held exactly by the gate.
	JobsSucceeded   int `json:"jobs_succeeded"`
	StreamsComplete int `json:"streams_complete"`

	// Service-path latencies in milliseconds (reusing the step-latency
	// percentile shape).
	SubmitToFirstStep BenchSimLatency `json:"submit_to_first_step"`
	SubmitToDone      BenchSimLatency `json:"submit_to_done"`

	WallSeconds   float64 `json:"wall_seconds"`
	JobsPerMinute float64 `json:"jobs_per_minute"`
}

// RunBenchService executes the experiment: jobs smoke jobs spread over
// tenants tenants, each streamed by subscribers concurrent subscribers.
// Zero arguments take the benchmark defaults.
func RunBenchService(blocks [3]int, blockSize, steps, jobs, tenants, subscribers, workers int) (BenchServiceResult, error) {
	if blocks == ([3]int{}) {
		blocks = [3]int{2, 2, 2}
	}
	if blockSize == 0 {
		blockSize = 8
	}
	if steps == 0 {
		steps = 4
	}
	if jobs == 0 {
		jobs = 6
	}
	if tenants == 0 {
		tenants = 3
	}
	if subscribers == 0 {
		subscribers = 3
	}
	if workers == 0 {
		workers = 2
	}

	dataDir, err := os.MkdirTemp("", "mpcf-bench-service-")
	if err != nil {
		return BenchServiceResult{}, err
	}
	defer os.RemoveAll(dataDir)
	svc, err := service.New(service.Config{
		DataDir:       dataDir,
		Workers:       workers,
		TenantRunning: workers, // the bench measures throughput, not fairness
		TenantQueued:  jobs,
		Registry:      telemetry.NewRegistry(),
	})
	if err != nil {
		return BenchServiceResult{}, err
	}
	defer svc.Close()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return BenchServiceResult{}, err
	}
	srv := &http.Server{Handler: svc.Handler()}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	res := BenchServiceResult{
		Scenario: "shockbubble", BlockSize: blockSize, BlockDims: blocks,
		Steps: steps, Workers: workers, Jobs: jobs, Tenants: tenants,
		Subscribers: subscribers,
	}

	var mu sync.Mutex
	var firstStepMS, doneMS []float64
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < jobs; i++ {
		spec := service.JobSpec{
			Scenario: "shockbubble",
			Tenant:   fmt.Sprintf("bench-tenant-%d", i%tenants),
			Nonce:    fmt.Sprintf("bench-%d", i),
			Params: service.SpecParams{
				Blocks: blocks, BlockSize: blockSize, Steps: steps, DiagEvery: 2,
			},
		}
		wg.Add(1)
		go func(spec service.JobSpec) {
			defer wg.Done()
			submitAt := time.Now()
			id, err := benchSubmit(base, spec)
			if err != nil {
				return // counted as a missing success by the structural check
			}
			var jwg sync.WaitGroup
			for s := 0; s < subscribers; s++ {
				jwg.Add(1)
				go func(measure bool) {
					defer jwg.Done()
					firstStep, succeeded, complete := benchStream(base, id)
					mu.Lock()
					defer mu.Unlock()
					if complete {
						res.StreamsComplete++
					}
					if !measure {
						return
					}
					if succeeded {
						res.JobsSucceeded++
						doneMS = append(doneMS, float64(time.Since(submitAt).Milliseconds()))
					}
					if !firstStep.IsZero() {
						firstStepMS = append(firstStepMS, float64(firstStep.Sub(submitAt).Milliseconds()))
					}
				}(s == 0)
			}
			jwg.Wait()
		}(spec)
	}
	wg.Wait()
	res.WallSeconds = time.Since(start).Seconds()
	if res.WallSeconds > 0 {
		res.JobsPerMinute = float64(res.JobsSucceeded) / res.WallSeconds * 60
	}
	res.SubmitToFirstStep = stepLatency(firstStepMS)
	res.SubmitToDone = stepLatency(doneMS)
	return res, nil
}

// benchSubmit posts one spec and returns the job ID.
func benchSubmit(base string, spec service.JobSpec) (string, error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", err
	}
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated && resp.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(resp.Body)
		return "", fmt.Errorf("experiments: submit returned %d: %s", resp.StatusCode, b)
	}
	var st service.Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return "", err
	}
	return st.ID, nil
}

// benchStream follows one job's event stream to the end, returning the
// arrival time of the first step event, whether the job succeeded, and
// whether the stream was complete (gap-free and terminally closed).
func benchStream(base, id string) (firstStep time.Time, succeeded, complete bool) {
	resp, err := http.Get(base + "/v1/jobs/" + id + "/events")
	if err != nil || resp.StatusCode != http.StatusOK {
		if resp != nil {
			resp.Body.Close()
		}
		return
	}
	defer resp.Body.Close()
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	next := 0
	terminal := false
	for sc.Scan() {
		var e service.Event
		if json.Unmarshal(sc.Bytes(), &e) != nil {
			return
		}
		if e.Seq != next {
			return // gap: incomplete replay
		}
		next++
		if e.Type == "step" && firstStep.IsZero() {
			firstStep = time.Now()
		}
		if e.Type == "state" && e.State.Terminal() {
			terminal = true
			succeeded = e.State == service.StateSucceeded
		}
	}
	complete = terminal && next > 0
	return
}

// CompareBenchService diffs a fresh service record against the baseline.
// The structural outcomes — every job succeeded, every subscriber stream
// complete — are exact; the service-path latencies and throughput use the
// generous machine-dependent thresholds.
func CompareBenchService(base, fresh BenchServiceResult, th CompareThresholds) *CompareReport {
	r := &CompareReport{Kind: "service"}
	if base.Scenario != fresh.Scenario || base.BlockSize != fresh.BlockSize ||
		base.BlockDims != fresh.BlockDims || base.Steps != fresh.Steps ||
		base.Jobs != fresh.Jobs || base.Tenants != fresh.Tenants ||
		base.Subscribers != fresh.Subscribers {
		r.fail("configuration mismatch: baseline %s N=%d blocks=%v steps=%d jobs=%d tenants=%d subs=%d, fresh %s N=%d blocks=%v steps=%d jobs=%d tenants=%d subs=%d — regenerate the baseline (make bench-snapshot)",
			base.Scenario, base.BlockSize, base.BlockDims, base.Steps, base.Jobs, base.Tenants, base.Subscribers,
			fresh.Scenario, fresh.BlockSize, fresh.BlockDims, fresh.Steps, fresh.Jobs, fresh.Tenants, fresh.Subscribers)
		return r
	}
	r.checkExact("jobs_succeeded", int64(base.Jobs), int64(fresh.JobsSucceeded))
	r.checkExact("streams_complete", int64(base.Jobs*base.Subscribers), int64(fresh.StreamsComplete))
	r.checkMin("jobs_per_minute", base.JobsPerMinute, fresh.JobsPerMinute, th.MinRateFrac)
	r.checkMax("submit_to_first_step.mean_ms", base.SubmitToFirstStep.MeanMS,
		fresh.SubmitToFirstStep.MeanMS, th.MaxLatencyFactor)
	r.checkMax("submit_to_done.mean_ms", base.SubmitToDone.MeanMS,
		fresh.SubmitToDone.MeanMS, th.MaxLatencyFactor)
	return r
}

// BenchService runs the service experiment, prints the human summary and
// writes BENCH_service.json (skipped when jsonPath is empty).
func BenchService(w io.Writer, jsonPath string) {
	header(w, "Simulation-as-a-service benchmark")
	res, err := RunBenchService([3]int{}, 0, 0, 0, 0, 0, 0)
	if err != nil {
		panic(err)
	}
	line(w, "scenario %s: N=%d blocks=%v steps=%d; %d jobs over %d tenants, %d workers, %d subscribers/job",
		res.Scenario, res.BlockSize, res.BlockDims, res.Steps,
		res.Jobs, res.Tenants, res.Workers, res.Subscribers)
	line(w, "outcome: %d/%d jobs succeeded, %d/%d subscriber streams complete",
		res.JobsSucceeded, res.Jobs, res.StreamsComplete, res.Jobs*res.Subscribers)
	line(w, "submit->first-step ms: mean %.1f  p50 %.1f  p90 %.1f  max %.1f",
		res.SubmitToFirstStep.MeanMS, res.SubmitToFirstStep.P50MS,
		res.SubmitToFirstStep.P90MS, res.SubmitToFirstStep.MaxMS)
	line(w, "submit->done ms:       mean %.1f  p50 %.1f  p90 %.1f  max %.1f",
		res.SubmitToDone.MeanMS, res.SubmitToDone.P50MS,
		res.SubmitToDone.P90MS, res.SubmitToDone.MaxMS)
	line(w, "throughput: %.1f jobs/min (%.2fs wall)", res.JobsPerMinute, res.WallSeconds)
	if jsonPath == "" {
		return
	}
	if err := WriteBenchServiceJSON(jsonPath, res); err != nil {
		panic(err)
	}
	line(w, "wrote %s", jsonPath)
}

// WriteBenchServiceJSON writes the record as indented JSON.
func WriteBenchServiceJSON(path string, res BenchServiceResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
