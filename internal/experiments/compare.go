package experiments

// The bench regression gate: compare a fresh BENCH_sim.json / BENCH_net.json
// against a checked-in baseline. Two classes of check:
//
//   - Structural checks are machine-independent and exact: the analytic
//     traffic constants (up_bytes_per_value, stage_bytes_per_cell), the
//     spawn-once pool invariant, kernel and transport presence, the sweep
//     shape. A mismatch means the code changed what it computes, not how
//     fast the host is.
//   - Rate checks are machine-dependent and deliberately generous: a fresh
//     throughput below MinRateFrac of baseline, or a latency above
//     MaxLatencyFactor of baseline, flags a regression. The default factors
//     tolerate CI-class noise and hardware spread; -compare-slack widens
//     them further for shared runners.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// CompareThresholds are the relative tolerances of the rate checks.
type CompareThresholds struct {
	// MinRateFrac: fresh throughput (points/s, GFLOP/s) must reach this
	// fraction of baseline.
	MinRateFrac float64
	// MaxLatencyFactor: fresh mean step latency must stay below this factor
	// of baseline.
	MaxLatencyFactor float64
	// MinBWFrac: fresh per-size wire bandwidth must reach this fraction of
	// baseline.
	MinBWFrac float64
	// MaxNetLatencyFactor: fresh per-size p50 wire latency must stay below
	// this factor of baseline.
	MaxNetLatencyFactor float64
	// MaxObsRelDev: cloud-collapse observables must stay within this
	// relative deviation of baseline. Observables are deterministic for a
	// fixed configuration, so this is much tighter than the rate checks —
	// it only absorbs math-library and FP-contraction spread across
	// platforms — and a violation means the physics changed.
	MaxObsRelDev float64
}

// DefaultThresholds returns the standard tolerances widened by slack
// (1 = default; 2 = twice as permissive, for noisy shared runners).
func DefaultThresholds(slack float64) CompareThresholds {
	if slack < 1 {
		slack = 1
	}
	return CompareThresholds{
		MinRateFrac:         0.4 / slack,
		MaxLatencyFactor:    2.5 * slack,
		MinBWFrac:           0.25 / slack,
		MaxNetLatencyFactor: 4 * slack,
		MaxObsRelDev:        1e-6 * slack,
	}
}

// CompareReport is the outcome of one baseline/fresh comparison.
type CompareReport struct {
	Kind        string   // "sim" or "net"
	Checks      int      // checks performed
	Regressions []string // failed checks, human-readable
	Notes       []string // informational (skipped or config-mismatch details)
}

// OK reports whether no check regressed.
func (r *CompareReport) OK() bool { return len(r.Regressions) == 0 }

func (r *CompareReport) fail(format string, args ...any) {
	r.Regressions = append(r.Regressions, fmt.Sprintf(format, args...))
}

func (r *CompareReport) note(format string, args ...any) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// checkMin asserts fresh >= frac*base (when base is positive).
func (r *CompareReport) checkMin(name string, base, fresh, frac float64) {
	if base <= 0 {
		return
	}
	r.Checks++
	if fresh < frac*base {
		r.fail("%s regressed: %.4g vs baseline %.4g (floor %.4g = %.0f%% of baseline)",
			name, fresh, base, frac*base, 100*frac)
	}
}

// checkMax asserts fresh <= factor*base (when base is positive).
func (r *CompareReport) checkMax(name string, base, fresh, factor float64) {
	if base <= 0 {
		return
	}
	r.Checks++
	if fresh > factor*base {
		r.fail("%s regressed: %.4g vs baseline %.4g (ceiling %.4g = %.1fx baseline)",
			name, fresh, base, factor*base, factor)
	}
}

// checkExact asserts an integral structural constant is unchanged.
func (r *CompareReport) checkExact(name string, base, fresh int64) {
	r.Checks++
	if base != fresh {
		r.fail("%s changed: %d vs baseline %d (structural, machine-independent)", name, fresh, base)
	}
}

// CompareBenchSim diffs a fresh sim record against the baseline.
func CompareBenchSim(base, fresh BenchSimResult, th CompareThresholds) *CompareReport {
	r := &CompareReport{Kind: "sim"}
	if base.BlockSize != fresh.BlockSize || base.RankDims != fresh.RankDims ||
		base.BlockDims != fresh.BlockDims || base.Steps != fresh.Steps {
		r.fail("configuration mismatch: baseline N=%d ranks=%v blocks=%v steps=%d, fresh N=%d ranks=%v blocks=%v steps=%d — regenerate the baseline (make bench-snapshot)",
			base.BlockSize, base.RankDims, base.BlockDims, base.Steps,
			fresh.BlockSize, fresh.RankDims, fresh.BlockDims, fresh.Steps)
		return r
	}

	// Structural: the analytic traffic of each execution model and the
	// spawn-once pool invariant do not depend on the machine.
	baseModes := map[bool]BenchSimMode{}
	for _, m := range base.Modes {
		baseModes[m.Pipeline] = m
	}
	for _, m := range fresh.Modes {
		name := "staged"
		if m.Pipeline {
			name = "fused"
		}
		bm, ok := baseModes[m.Pipeline]
		if !ok {
			r.Checks++
			r.fail("mode %s missing from baseline", name)
			continue
		}
		r.checkExact(name+" up_bytes_per_value", bm.UPBytesPerValue, m.UPBytesPerValue)
		r.checkExact(name+" stage_bytes_per_cell", bm.StageBytesPerCell, m.StageBytesPerCell)
		r.Checks++
		if m.PoolWorkers > 0 && m.WorkerSpawns != int64(m.PoolWorkers) {
			r.fail("%s pool spawned %d worker goroutines for %d workers — the spawn-once invariant broke",
				name, m.WorkerSpawns, m.PoolWorkers)
		}
		r.checkMin(name+" points_per_second", bm.PointsPerSec, m.PointsPerSec, th.MinRateFrac)
		r.checkMax(name+" step_latency.mean_ms", bm.StepLatency.MeanMS, m.StepLatency.MeanMS, th.MaxLatencyFactor)
	}

	r.checkMin("points_per_second", base.PointsPerSec, fresh.PointsPerSec, th.MinRateFrac)
	r.checkMax("step_latency.mean_ms", base.StepLatency.MeanMS, fresh.StepLatency.MeanMS, th.MaxLatencyFactor)

	// Structural: the live-rebalance record. The migration must actually
	// move blocks and reduce the measured pool-load imbalance, and the
	// layout instrumentation series must stay present in the registry —
	// none of which depends on the machine.
	if base.Rebalance != nil {
		r.Checks++
		if fresh.Rebalance == nil {
			r.fail("rebalance record present in baseline but absent from fresh run")
		} else {
			fr := fresh.Rebalance
			r.Checks++
			if fr.MigratedBlocks <= 0 {
				r.fail("rebalance migrated %d blocks on a skewed partition — the migration path is dead", fr.MigratedBlocks)
			}
			r.Checks++
			if fr.ImbalanceAfter >= fr.ImbalanceBefore {
				r.fail("rebalance did not reduce pool imbalance: %.3f -> %.3f (skew cuts %v)",
					fr.ImbalanceBefore, fr.ImbalanceAfter, fr.SkewCuts)
			}
			for _, name := range base.Rebalance.MetricsPresent {
				r.Checks++
				found := false
				for _, got := range fr.MetricsPresent {
					if got == name {
						found = true
						break
					}
				}
				if !found {
					r.fail("metric series %s present in baseline but missing from the fresh registry (structural, machine-independent)", name)
				}
			}
		}
	}

	names := make([]string, 0, len(base.Kernels))
	for name := range base.Kernels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		bk := base.Kernels[name]
		fk, ok := fresh.Kernels[name]
		if !ok {
			r.Checks++
			r.fail("kernel %s present in baseline but absent from fresh run", name)
			continue
		}
		r.checkMin("kernel "+name+" gflops", bk.GFLOPS, fk.GFLOPS, th.MinRateFrac)
	}
	return r
}

// CompareBenchCloud diffs a fresh cloud-collapse record against the
// baseline. Geometry (bubble count, β, void fraction, Rayleigh time) and
// observables are deterministic for a fixed configuration and held to
// MaxObsRelDev; throughput and latency use the generous rate thresholds.
func CompareBenchCloud(base, fresh BenchCloudResult, th CompareThresholds) *CompareReport {
	r := &CompareReport{Kind: "cloud"}
	if base.Scenario != fresh.Scenario || base.BlockSize != fresh.BlockSize ||
		base.RankDims != fresh.RankDims || base.BlockDims != fresh.BlockDims ||
		base.Steps != fresh.Steps {
		r.fail("configuration mismatch: baseline %s N=%d ranks=%v blocks=%v steps=%d, fresh %s N=%d ranks=%v blocks=%v steps=%d — regenerate the baseline (make bench-snapshot)",
			base.Scenario, base.BlockSize, base.RankDims, base.BlockDims, base.Steps,
			fresh.Scenario, fresh.BlockSize, fresh.RankDims, fresh.BlockDims, fresh.Steps)
		return r
	}

	checkRel := func(name string, b, f float64) {
		r.Checks++
		scale := b
		if scale < 0 {
			scale = -scale
		}
		if scale == 0 {
			if f != 0 {
				r.fail("%s changed: %.6g vs baseline 0 (deterministic observable)", name, f)
			}
			return
		}
		dev := (f - b) / scale
		if dev < 0 {
			dev = -dev
		}
		if dev > th.MaxObsRelDev {
			r.fail("%s changed: %.6g vs baseline %.6g (rel dev %.2e > %.2e — the physics changed, not the machine)",
				name, f, b, dev, th.MaxObsRelDev)
		}
	}

	r.checkExact("bubbles", int64(base.Bubbles), int64(fresh.Bubbles))
	checkRel("beta", base.Beta, fresh.Beta)
	checkRel("void_fraction", base.VoidFraction, fresh.VoidFraction)
	checkRel("rayleigh_tau", base.RayleighTau, fresh.RayleighTau)

	names := make([]string, 0, len(base.Observables))
	for name := range base.Observables {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		f, ok := fresh.Observables[name]
		if !ok {
			r.Checks++
			r.fail("observable %s present in baseline but absent from fresh run", name)
			continue
		}
		checkRel("observable "+name, base.Observables[name], f)
	}
	for name := range fresh.Observables {
		if _, ok := base.Observables[name]; !ok {
			r.note("observable %s not in baseline, skipped", name)
		}
	}

	r.checkMin("points_per_second", base.PointsPerSec, fresh.PointsPerSec, th.MinRateFrac)
	r.checkMax("step_latency.mean_ms", base.StepLatency.MeanMS, fresh.StepLatency.MeanMS, th.MaxLatencyFactor)
	return r
}

// CompareBenchNet diffs a fresh net record against the baseline.
func CompareBenchNet(base, fresh BenchNetResult, th CompareThresholds) *CompareReport {
	r := &CompareReport{Kind: "net"}
	baseTr := map[string]BenchNetTransport{}
	for _, tr := range base.Transports {
		baseTr[tr.Transport] = tr
	}
	for _, tr := range fresh.Transports {
		bt, ok := baseTr[tr.Transport]
		if !ok {
			r.note("transport %s not in baseline, skipped", tr.Transport)
			continue
		}
		delete(baseTr, tr.Transport)
		basePts := map[int]BenchNetPoint{}
		for _, p := range bt.Points {
			basePts[p.SizeBytes] = p
		}
		for _, p := range tr.Points {
			bp, ok := basePts[p.SizeBytes]
			if !ok {
				r.Checks++
				r.fail("%s sweep point %d B absent from baseline — sweep shape changed", tr.Transport, p.SizeBytes)
				continue
			}
			delete(basePts, p.SizeBytes)
			tag := fmt.Sprintf("%s %dB", tr.Transport, p.SizeBytes)
			r.checkMin(tag+" bandwidth_mbps", bp.BWMBps, p.BWMBps, th.MinBWFrac)
			r.checkMax(tag+" latency_p50_us", bp.P50US, p.P50US, th.MaxNetLatencyFactor)
		}
		for size := range basePts {
			r.Checks++
			r.fail("%s sweep point %d B present in baseline but absent from fresh run", tr.Transport, size)
		}
	}
	for name := range baseTr {
		r.Checks++
		r.fail("transport %s present in baseline but absent from fresh run", name)
	}
	return r
}

// DetectBenchKind classifies a bench JSON payload by its discriminating
// top-level key: "kernels" marks a sim record, "transports" a net record,
// "observables" a cloud-collapse record, "service_jobs" a service record.
func DetectBenchKind(data []byte) (string, error) {
	var probe map[string]json.RawMessage
	if err := json.Unmarshal(data, &probe); err != nil {
		return "", fmt.Errorf("experiments: bench record: %w", err)
	}
	if _, ok := probe["kernels"]; ok {
		return "sim", nil
	}
	if _, ok := probe["transports"]; ok {
		return "net", nil
	}
	if _, ok := probe["observables"]; ok {
		return "cloud", nil
	}
	if _, ok := probe["service_jobs"]; ok {
		return "service", nil
	}
	if _, ok := probe["enc_pipeline"]; ok {
		return "io", nil
	}
	return "", fmt.Errorf("experiments: bench record has none of \"kernels\", \"transports\", \"observables\", \"service_jobs\" or \"enc_pipeline\" — not a BENCH_sim.json, BENCH_net.json, BENCH_cloud.json, BENCH_service.json or BENCH_io.json")
}

// CompareBenchFiles loads baseline and fresh records from disk, matches
// their kinds and runs the corresponding comparison.
func CompareBenchFiles(basePath, freshPath string, th CompareThresholds) (*CompareReport, error) {
	baseData, err := os.ReadFile(basePath)
	if err != nil {
		return nil, err
	}
	freshData, err := os.ReadFile(freshPath)
	if err != nil {
		return nil, err
	}
	baseKind, err := DetectBenchKind(baseData)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", basePath, err)
	}
	freshKind, err := DetectBenchKind(freshData)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", freshPath, err)
	}
	if baseKind != freshKind {
		return nil, fmt.Errorf("experiments: cannot compare %s record %s against %s record %s",
			freshKind, freshPath, baseKind, basePath)
	}
	switch baseKind {
	case "sim":
		var base, fresh BenchSimResult
		if err := json.Unmarshal(baseData, &base); err != nil {
			return nil, fmt.Errorf("%s: %w", basePath, err)
		}
		if err := json.Unmarshal(freshData, &fresh); err != nil {
			return nil, fmt.Errorf("%s: %w", freshPath, err)
		}
		return CompareBenchSim(base, fresh, th), nil
	case "cloud":
		var base, fresh BenchCloudResult
		if err := json.Unmarshal(baseData, &base); err != nil {
			return nil, fmt.Errorf("%s: %w", basePath, err)
		}
		if err := json.Unmarshal(freshData, &fresh); err != nil {
			return nil, fmt.Errorf("%s: %w", freshPath, err)
		}
		return CompareBenchCloud(base, fresh, th), nil
	case "service":
		var base, fresh BenchServiceResult
		if err := json.Unmarshal(baseData, &base); err != nil {
			return nil, fmt.Errorf("%s: %w", basePath, err)
		}
		if err := json.Unmarshal(freshData, &fresh); err != nil {
			return nil, fmt.Errorf("%s: %w", freshPath, err)
		}
		return CompareBenchService(base, fresh, th), nil
	case "io":
		var base, fresh BenchIOResult
		if err := json.Unmarshal(baseData, &base); err != nil {
			return nil, fmt.Errorf("%s: %w", basePath, err)
		}
		if err := json.Unmarshal(freshData, &fresh); err != nil {
			return nil, fmt.Errorf("%s: %w", freshPath, err)
		}
		return CompareBenchIO(base, fresh, th), nil
	default:
		var base, fresh BenchNetResult
		if err := json.Unmarshal(baseData, &base); err != nil {
			return nil, fmt.Errorf("%s: %w", basePath, err)
		}
		if err := json.Unmarshal(freshData, &fresh); err != nil {
			return nil, fmt.Errorf("%s: %w", freshPath, err)
		}
		return CompareBenchNet(base, fresh, th), nil
	}
}

// CompareAgainstBaseline reruns the benchmark matching the baseline's kind
// with the baseline's own configuration (block size, steps, sweep) and
// compares the fresh result. The fresh record is also written to freshPath
// when non-empty, so CI can upload it as an artifact.
func CompareAgainstBaseline(basePath, freshPath string, pipeline bool,
	th CompareThresholds) (*CompareReport, error) {
	baseData, err := os.ReadFile(basePath)
	if err != nil {
		return nil, err
	}
	kind, err := DetectBenchKind(baseData)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", basePath, err)
	}
	switch kind {
	case "sim":
		var base BenchSimResult
		if err := json.Unmarshal(baseData, &base); err != nil {
			return nil, fmt.Errorf("%s: %w", basePath, err)
		}
		fresh, err := RunBenchSim(base.BlockSize, base.Steps, pipeline)
		if err != nil {
			return nil, err
		}
		if freshPath != "" {
			if err := WriteBenchSimJSON(freshPath, fresh); err != nil {
				return nil, err
			}
		}
		return CompareBenchSim(base, fresh, th), nil
	case "cloud":
		var base BenchCloudResult
		if err := json.Unmarshal(baseData, &base); err != nil {
			return nil, fmt.Errorf("%s: %w", basePath, err)
		}
		fresh, err := RunBenchCloud(base.Scenario, base.BlockDims, base.BlockSize, base.Steps)
		if err != nil {
			return nil, err
		}
		if freshPath != "" {
			if err := WriteBenchCloudJSON(freshPath, fresh); err != nil {
				return nil, err
			}
		}
		return CompareBenchCloud(base, fresh, th), nil
	case "service":
		var base BenchServiceResult
		if err := json.Unmarshal(baseData, &base); err != nil {
			return nil, fmt.Errorf("%s: %w", basePath, err)
		}
		fresh, err := RunBenchService(base.BlockDims, base.BlockSize, base.Steps,
			base.Jobs, base.Tenants, base.Subscribers, base.Workers)
		if err != nil {
			return nil, err
		}
		if freshPath != "" {
			if err := WriteBenchServiceJSON(freshPath, fresh); err != nil {
				return nil, err
			}
		}
		return CompareBenchService(base, fresh, th), nil
	case "io":
		var base BenchIOResult
		if err := json.Unmarshal(baseData, &base); err != nil {
			return nil, fmt.Errorf("%s: %w", basePath, err)
		}
		fresh, err := RunBenchIO(base.BlockSize, base.Workers)
		if err != nil {
			return nil, err
		}
		if freshPath != "" {
			if err := WriteBenchIOJSON(freshPath, fresh); err != nil {
				return nil, err
			}
		}
		return CompareBenchIO(base, fresh, th), nil
	default:
		var base BenchNetResult
		if err := json.Unmarshal(baseData, &base); err != nil {
			return nil, fmt.Errorf("%s: %w", basePath, err)
		}
		iters, burst := base.Iters, base.Burst
		if iters <= 0 {
			iters = 40 // the BenchNet defaults, for hand-edited baselines
		}
		if burst <= 0 {
			burst = 8
		}
		fresh, err := RunBenchNet(iters, burst)
		if err != nil {
			return nil, err
		}
		if freshPath != "" {
			if err := WriteBenchNetJSON(freshPath, fresh); err != nil {
				return nil, err
			}
		}
		return CompareBenchNet(base, fresh, th), nil
	}
}
