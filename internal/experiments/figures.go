package experiments

import (
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"cubism/internal/baseline"
	"cubism/internal/cloud"
	"cubism/internal/cluster"
	"cubism/internal/compress"
	"cubism/internal/core"
	"cubism/internal/grid"
	"cubism/internal/roofline"
	"cubism/internal/sim"
	"cubism/internal/wavelet"
)

// Fig5 regenerates the Figure 5 time series: maximum pressure in the flow
// field and on the solid wall, kinetic energy of the system, and the
// normalized equivalent radius of the cloud, for a small collapsing cloud
// over a wall.
//
// Paper shape: wall pressure eventually peaks at ~20x ambient after the
// collective collapse; kinetic energy rises to a maximum near the main
// collapse; the equivalent radius decreases, rebounds once, then collapses.
func Fig5(w io.Writer, steps int) {
	header(w, "Figure 5: cloud collapse diagnostics (CSV series)")
	bubbles, err := (cloud.Spec{
		Center: [3]float64{0.5, 0.5, 0.55},
		Radius: 0.3,
		N:      10,
		RMin:   0.05, RMax: 0.1,
		Seed: 42,
	}).Generate()
	if err != nil {
		panic(err)
	}
	field := cloud.NewField(bubbles, 0.02)
	cfg := sim.Config{
		Cluster: cluster.Config{
			RankDims:  [3]int{1, 1, 1},
			BlockDims: [3]int{4, 4, 4},
			BlockSize: blockEdge,
			Extent:    1,
			BC:        grid.WallBC(grid.ZLo),
			Workers:   runtime.NumCPU(),
			CFL:       0.3,
			Init:      field.At,
		},
		Steps:     steps,
		DiagEvery: 5,
		Wall:      grid.ZLo,
		HasWall:   true,
	}
	const ambient = 100e5
	r0 := 0.0
	line(w, "time,max_p/ambient,wall_p/ambient,kinetic_energy,equiv_radius_norm")
	_, err = sim.Run(cfg, func(s sim.StepInfo) {
		if !s.HasDiag {
			return
		}
		if r0 == 0 {
			r0 = s.Diag.EquivRadius
		}
		line(w, "%.4e,%.3f,%.3f,%.4e,%.4f",
			s.Time, s.Diag.MaxPressure/ambient, s.Diag.WallPressure/ambient,
			s.Diag.KineticEnergy, s.Diag.EquivRadius/r0)
	})
	if err != nil {
		panic(err)
	}
	line(w, "shape: radius decreases; kinetic energy and pressure peaks grow as bubbles collapse")
}

// Fig7 regenerates the time-distribution pies: the share of each kernel in
// a simulation step with compressed dumps, and the split of the dump stage
// into parallel I/O, wavelet transform and encoding.
//
// Paper shape: RHS ~89% of step time; dumps <= 4-5%; inside a dump: IO 92%,
// ENC 6%, DEC 2%.
func Fig7(w io.Writer, steps int) {
	header(w, "Figure 7: time distribution of the simulation and the dump stage")
	dir, err := os.MkdirTemp("", "mpcf-fig7-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	bubbles, err := (cloud.Spec{
		Center: [3]float64{0.5, 0.5, 0.5}, Radius: 0.3, N: 8,
		RMin: 0.05, RMax: 0.1, Seed: 9,
	}).Generate()
	if err != nil {
		panic(err)
	}
	field := cloud.NewField(bubbles, 0.02)
	cfg := sim.Config{
		Cluster: cluster.Config{
			RankDims:  [3]int{1, 1, 1},
			BlockDims: [3]int{4, 4, 4},
			BlockSize: blockEdge,
			Extent:    1,
			Workers:   runtime.NumCPU(),
			CFL:       0.3,
			Init:      field.At,
		},
		Steps:     steps,
		DumpEvery: steps / 2,
		DumpDir:   dir,
		DiagEvery: 1 << 30,
	}
	summary, err := sim.Run(cfg, nil)
	if err != nil {
		panic(err)
	}
	line(w, "step time distribution (left pie):")
	line(w, "%s", summary.Report)
	ioShare := summary.KernelShare["IO_WAVELET"]
	line(w, "dump stage share of total: %.1f%% (paper: 4-5%% at dumps every 100 steps)", 100*ioShare)
	line(w, "RHS share: %.1f%% (paper: ~89%%)", 100*summary.KernelShare["RHS"])
}

// Fig9 regenerates the node-layer weak scaling: sustained RHS/DT/UP
// GFLOP/s as the worker count grows with fixed blocks per worker, plus the
// kernels' placement against the host roofline.
func Fig9(w io.Writer, minDur time.Duration) {
	header(w, "Figure 9: node-layer scaling and roofline placement")
	host := roofline.MeasureHost()
	line(w, "%s", host.String())
	maxW := runtime.NumCPU()
	line(w, "%8s %14s %16s", "workers", "RHS GFLOP/s", "per-worker")
	base := 0.0
	for workers := 1; workers <= maxW; workers *= 2 {
		// Fixed work per worker: one block column per worker.
		nb := 2
		rate := measureEngineRHS(blockEdge, nb, workers, nil, minDur)
		if workers == 1 {
			base = rate
		}
		line(w, "%8d %14.2f %15.2f%%", workers, rate, 100*rate/(base*float64(workers)))
	}
	line(w, "roofline placement (host, operational intensities at N=%d):", blockEdge)
	for _, k := range []struct {
		name string
		oi   float64
	}{
		{"RHS", core.OperationalIntensityRHS(blockEdge)},
		{"DT", core.OperationalIntensityDT()},
		{"UP", core.OperationalIntensityUP()},
	} {
		line(w, "  %-4s OI %6.2f FLOP/B -> attainable %7.2f GFLOP/s (%s)",
			k.name, k.oi, host.Attainable(k.oi), boundKind(host, k.oi))
	}
}

func boundKind(m roofline.Machine, oi float64) string {
	if oi < m.Ridge() {
		return "memory-bound"
	}
	return "compute-bound"
}

// Compression regenerates the §7 compression-rate observations: rates for
// p and Γ across thresholds, the AMR-threshold comparison, and disk
// footprints.
//
// Paper values: p 10-20:1 at eps=1e-2, Γ 100-150:1 at eps=1e-3;
// AMR-grade thresholds (1e-4..1e-7) compress at best 1.15:1 when applied
// to each scalar field of the *solution* (not the dump quantities).
func Compression(w io.Writer, n int) {
	header(w, "Compression rates (paper §7)")
	g := cloudGrid(n, 64/n, 7)
	line(w, "%-8s %10s %10s %10s %12s", "quantity", "epsilon", "rate", "kept", "imbalance")
	for _, c := range []struct {
		q   compress.Quantity
		eps float64
	}{
		{compress.Pressure, 1e-2},
		{compress.Pressure, 1e-3},
		{compress.Gamma, 1e-3},
		{compress.Gamma, 1e-2},
	} {
		_, st, err := compress.Compress(g, c.q, compress.Options{
			Epsilon: c.eps, Encoder: "zlib", Workers: 4,
		})
		if err != nil {
			panic(err)
		}
		line(w, "%-8s %10.0e %9.1f:1 %9.2f%% %11.0f%%",
			c.q, c.eps, st.Rate(), 100*float64(st.Kept)/float64(st.Total),
			100*compress.Imbalance(st.EncTimes))
	}
	// AMR-threshold comparison: thresholds tight enough for solution-grade
	// L∞ errors barely compress.
	for _, eps := range []float64{1e-5, 1e-6} {
		_, st, err := compress.Compress(g, compress.Density, compress.Options{
			Epsilon: eps, Encoder: "zlib", Workers: 4,
		})
		if err != nil {
			panic(err)
		}
		line(w, "%-8s %10.0e %9.2f:1   (AMR-grade threshold; paper: <= 1.15:1)",
			"rho", eps, st.Rate())
	}
	// Zerotree alternative (paper refs [72,48]) on one pressure block.
	{
		blk := g.Blocks[0]
		field := make([]float32, n*n*n)
		compress.Pressure.Extract(blk, field)
		var scale float64
		for _, v := range field {
			if a := math.Abs(float64(v)); a > scale {
				scale = a
			}
		}
		wavelet.NewFWT3(n).Forward(field)
		stream := compress.ZerotreeEncode(field, n, 1e-3*scale)
		line(w, "%-8s %10.0e %9.2f:1   (embedded zerotree coder, one block)",
			"p/EZW", 1e-3, float64(n*n*n*4)/float64(len(stream)))
	}
	line(w, "paper: p 10-20:1 (eps 1e-2), Gamma 100-150:1 (eps 1e-3) at 50+ cells/radius resolution")
	line(w, "note: rates scale with interface sharpness; at this laptop resolution the interface")
	line(w, "occupies a larger cell fraction, capping the achievable rate (see EXPERIMENTS.md)")
}

// Throughput regenerates the §7 throughput discussion: measured points/s
// on this host, the projection onto 96 BGQ racks, and the comparison with
// the naive baseline solver (the state-of-the-art stand-in [68]).
//
// Paper values: 721 billion points/s on 96 racks, 18.3 s/step at 13.2
// trillion points, 20X over the state of the art.
func Throughput(w io.Writer, steps int) {
	header(w, "Throughput and time to solution (paper §7)")
	// Production solver on a small cloud.
	bubbles, err := (cloud.Spec{
		Center: [3]float64{0.5, 0.5, 0.5}, Radius: 0.3, N: 6,
		RMin: 0.05, RMax: 0.1, Seed: 3,
	}).Generate()
	if err != nil {
		panic(err)
	}
	field := cloud.NewField(bubbles, 0.02)
	cfg := sim.Config{
		Cluster: cluster.Config{
			RankDims:  [3]int{1, 1, 1},
			BlockDims: [3]int{2, 2, 2},
			BlockSize: blockEdge,
			Extent:    1,
			Workers:   runtime.NumCPU(),
			CFL:       0.3,
			Init:      field.At,
		},
		Steps:     steps,
		DiagEvery: 1 << 30,
	}
	summary, err := sim.Run(cfg, nil)
	if err != nil {
		panic(err)
	}
	prodRate := summary.PointsPerSec

	// Baseline solver on the same problem size.
	cells := blockEdge * 2
	b := baseline.New(cells, cells, cells, 1.0/float64(cells))
	b.Init(field.At)
	b.Step() // warm-up
	t0 := time.Now()
	baseSteps := max(steps/4, 1)
	for i := 0; i < baseSteps; i++ {
		b.Step()
	}
	baseRate := float64(cells*cells*cells*baseSteps) / time.Since(t0).Seconds()

	line(w, "production solver: %10.2f Mpoints/s (all cores)", prodRate/1e6)
	line(w, "naive baseline:    %10.2f Mpoints/s (single core, no reordering)", baseRate/1e6)
	line(w, "speedup:           %10.1fX (paper: 20X over the state of the art [68])", prodRate/baseRate)
	// Projection: the paper runs 13.2e12 points at 18.3 s/step on 96 racks
	// = 721e9 points/s, i.e. 7.3e6 points/s per core at 1.6e6 cores.
	perCore := prodRate / float64(runtime.NumCPU())
	projected := perCore * 1572864
	line(w, "per-core rate %.2f Mpoints/s -> naive projection to 1.6M BGQ cores: %.0f Gpoints/s (paper: 721)",
		perCore/1e6, projected/1e9)
	line(w, "(projection assumes core parity with the A2; see EXPERIMENTS.md for the calibrated model)")
}

// IO regenerates the §7 storage discussion: the disk footprint of a raw
// full-state snapshot against the compressed p and Γ dumps (paper: 7.9 TB
// uncompressed vs 0.47 TB compressed for the production campaign, a ~17:1
// campaign-level reduction), plus the wall-clock cost of both paths.
func IO(w io.Writer, n int) {
	header(w, "I/O footprint: raw state vs compressed dumps (paper §7)")
	g := cloudGrid(n, 64/n, 7)
	cells := int64(g.Cells())
	rawBytes := cells * 7 * 4 // full conserved state, float32

	t0 := time.Now()
	var compBytes int64
	for _, c := range []struct {
		q   compress.Quantity
		eps float64
	}{{compress.Pressure, 1e-2}, {compress.Gamma, 1e-3}} {
		_, st, err := compress.Compress(g, c.q, compress.Options{
			Epsilon: c.eps, Encoder: "zlib", Workers: 4,
		})
		if err != nil {
			panic(err)
		}
		compBytes += st.Encoded
	}
	compTime := time.Since(t0)

	// Raw write timing (page cache; a real parallel FS would be slower, so
	// the measured ratio is a lower bound on the paper's I/O gain).
	dir, err := os.MkdirTemp("", "mpcf-io-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	raw := make([]byte, rawBytes)
	t0 = time.Now()
	if err := os.WriteFile(dir+"/raw.bin", raw, 0o644); err != nil {
		panic(err)
	}
	rawTime := time.Since(t0)

	line(w, "raw full state:      %12d bytes (7 quantities, float32)", rawBytes)
	line(w, "compressed p + Γ:    %12d bytes", compBytes)
	line(w, "footprint reduction: %11.1f:1  (paper campaign: 7.9 TB -> 0.47 TB = 16.8:1)",
		float64(rawBytes)/float64(compBytes))
	line(w, "compress time %v vs raw write %v (page cache; on a bandwidth-limited", compTime.Round(time.Millisecond), rawTime.Round(time.Millisecond))
	line(w, "parallel file system the compressed path wins by the footprint ratio)")
}
