package experiments

import (
	"path/filepath"
	"strings"
	"testing"
)

func simBaseline() BenchSimResult {
	return BenchSimResult{
		BlockSize: 8, RankDims: [3]int{2, 1, 1}, BlockDims: [3]int{2, 2, 2},
		Steps: 5, Workers: 2, Pipeline: true,
		GlobalCells: 32768, WallSeconds: 0.5, PointsPerSec: 2e6,
		StepLatency:   BenchSimLatency{MeanMS: 10, P50MS: 9, P90MS: 12, P99MS: 14, MaxMS: 15},
		StepImbalance: 0.05,
		Kernels: map[string]BenchSimKernel{
			"RHSUP": {Calls: 15, Seconds: 0.4, GFLOPS: 3.0, FlopPerByte: 1.2, Share: 0.8},
			"DT":    {Calls: 5, Seconds: 0.1, GFLOPS: 1.0, FlopPerByte: 0.5, Share: 0.2},
		},
		Modes: []BenchSimMode{
			{Pipeline: false, PointsPerSec: 1.8e6, StepLatency: BenchSimLatency{MeanMS: 11},
				UPBytesPerValue: 12, StageBytesPerCell: 400, PoolWorkers: 2, WorkerSpawns: 2},
			{Pipeline: true, PointsPerSec: 2e6, StepLatency: BenchSimLatency{MeanMS: 10},
				UPBytesPerValue: 8, StageBytesPerCell: 360, PoolWorkers: 2, WorkerSpawns: 2},
		},
		Rebalance: &BenchSimRebalance{
			Layout: "hilbert", Ranks: 2, SkewCuts: []int{0, 13, 16},
			ImbalanceBefore: 0.8, ImbalanceAfter: 0.1, MigratedBlocks: 5,
			MetricsPresent: []string{"mpcf_layout_blocks", "mpcf_migrations_total"},
		},
	}
}

func netBaseline() BenchNetResult {
	return BenchNetResult{
		Iters: 40, Burst: 8,
		Transports: []BenchNetTransport{
			{Transport: "inproc", Points: []BenchNetPoint{
				{SizeBytes: 1024, MeanUS: 1, P50US: 1, BWMBps: 5000},
				{SizeBytes: 65536, MeanUS: 3, P50US: 3, BWMBps: 8000},
			}},
			{Transport: "tcp", Points: []BenchNetPoint{
				{SizeBytes: 1024, MeanUS: 30, P50US: 28, BWMBps: 300},
				{SizeBytes: 65536, MeanUS: 90, P50US: 85, BWMBps: 900},
			}},
		},
	}
}

func TestCompareSimIdenticalPasses(t *testing.T) {
	th := DefaultThresholds(1)
	r := CompareBenchSim(simBaseline(), simBaseline(), th)
	if !r.OK() {
		t.Fatalf("identical records regressed: %v", r.Regressions)
	}
	if r.Checks == 0 {
		t.Fatal("no checks performed")
	}
}

func TestCompareSimCatchesThroughputRegression(t *testing.T) {
	fresh := simBaseline()
	fresh.PointsPerSec *= 0.2 // below the 0.4 floor
	r := CompareBenchSim(simBaseline(), fresh, DefaultThresholds(1))
	if r.OK() {
		t.Fatal("60%+ throughput loss not flagged")
	}
	found := false
	for _, msg := range r.Regressions {
		if strings.Contains(msg, "points_per_second") {
			found = true
		}
	}
	if !found {
		t.Fatalf("regression list does not name points_per_second: %v", r.Regressions)
	}
}

func TestCompareSimToleratesNoise(t *testing.T) {
	fresh := simBaseline()
	fresh.PointsPerSec *= 0.7 // within the generous floor
	fresh.StepLatency.MeanMS *= 1.5
	for name, k := range fresh.Kernels {
		k.GFLOPS *= 0.6
		fresh.Kernels[name] = k
	}
	if r := CompareBenchSim(simBaseline(), fresh, DefaultThresholds(1)); !r.OK() {
		t.Fatalf("machine noise flagged as regression: %v", r.Regressions)
	}
}

func TestCompareSimStructuralIsExact(t *testing.T) {
	fresh := simBaseline()
	fresh.Modes[1].StageBytesPerCell += 16 // fused model now moves more memory
	r := CompareBenchSim(simBaseline(), fresh, DefaultThresholds(100))
	if r.OK() {
		t.Fatal("analytic traffic change not flagged (must be slack-independent)")
	}
}

func TestCompareSimSpawnOnceInvariant(t *testing.T) {
	fresh := simBaseline()
	fresh.Modes[1].WorkerSpawns = 100 // workers re-spawned per stage
	if r := CompareBenchSim(simBaseline(), fresh, DefaultThresholds(1)); r.OK() {
		t.Fatal("pool spawn-once violation not flagged")
	}
}

func TestCompareSimMissingKernel(t *testing.T) {
	fresh := simBaseline()
	delete(fresh.Kernels, "DT")
	if r := CompareBenchSim(simBaseline(), fresh, DefaultThresholds(1)); r.OK() {
		t.Fatal("missing kernel not flagged")
	}
}

func TestCompareSimRebalanceStructural(t *testing.T) {
	// Dropping the instrumentation series is structural, slack-independent.
	fresh := simBaseline()
	fresh.Rebalance.MetricsPresent = []string{"mpcf_layout_blocks"}
	if r := CompareBenchSim(simBaseline(), fresh, DefaultThresholds(100)); r.OK() {
		t.Fatal("missing mpcf_migrations_total series not flagged")
	}
	// A migration that moves nothing on a skewed partition is dead code.
	fresh = simBaseline()
	fresh.Rebalance.MigratedBlocks = 0
	if r := CompareBenchSim(simBaseline(), fresh, DefaultThresholds(1)); r.OK() {
		t.Fatal("zero-block migration not flagged")
	}
	// The rebalance must reduce, not worsen, the measured imbalance.
	fresh = simBaseline()
	fresh.Rebalance.ImbalanceAfter = fresh.Rebalance.ImbalanceBefore + 0.1
	if r := CompareBenchSim(simBaseline(), fresh, DefaultThresholds(1)); r.OK() {
		t.Fatal("imbalance growth after rebalance not flagged")
	}
	// Losing the whole record is flagged too.
	fresh = simBaseline()
	fresh.Rebalance = nil
	if r := CompareBenchSim(simBaseline(), fresh, DefaultThresholds(1)); r.OK() {
		t.Fatal("missing rebalance record not flagged")
	}
}

func TestCompareSimConfigMismatch(t *testing.T) {
	fresh := simBaseline()
	fresh.BlockSize = 16
	r := CompareBenchSim(simBaseline(), fresh, DefaultThresholds(1))
	if r.OK() || !strings.Contains(r.Regressions[0], "configuration mismatch") {
		t.Fatalf("config mismatch not flagged: %v", r.Regressions)
	}
}

func TestCompareNetIdenticalPasses(t *testing.T) {
	if r := CompareBenchNet(netBaseline(), netBaseline(), DefaultThresholds(1)); !r.OK() {
		t.Fatalf("identical net records regressed: %v", r.Regressions)
	}
}

func TestCompareNetCatchesBandwidthCollapse(t *testing.T) {
	fresh := netBaseline()
	fresh.Transports[1].Points[1].BWMBps = 50 // tcp 64K collapses
	r := CompareBenchNet(netBaseline(), fresh, DefaultThresholds(1))
	if r.OK() {
		t.Fatal("bandwidth collapse not flagged")
	}
}

func TestCompareNetSweepShape(t *testing.T) {
	fresh := netBaseline()
	fresh.Transports[0].Points = fresh.Transports[0].Points[:1] // inproc lost a size
	if r := CompareBenchNet(netBaseline(), fresh, DefaultThresholds(1)); r.OK() {
		t.Fatal("missing sweep point not flagged")
	}
	fresh = netBaseline()
	fresh.Transports = fresh.Transports[:1] // tcp missing entirely
	if r := CompareBenchNet(netBaseline(), fresh, DefaultThresholds(1)); r.OK() {
		t.Fatal("missing transport not flagged")
	}
}

func TestCompareBenchFiles(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	freshPath := filepath.Join(dir, "fresh.json")
	if err := WriteBenchSimJSON(basePath, simBaseline()); err != nil {
		t.Fatal(err)
	}
	fresh := simBaseline()
	fresh.PointsPerSec *= 0.1
	if err := WriteBenchSimJSON(freshPath, fresh); err != nil {
		t.Fatal(err)
	}
	r, err := CompareBenchFiles(basePath, freshPath, DefaultThresholds(1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != "sim" || r.OK() {
		t.Fatalf("file compare: kind %q ok %v, want sim/regressed", r.Kind, r.OK())
	}

	// Kind detection and mismatch handling.
	netPath := filepath.Join(dir, "net.json")
	if err := WriteBenchNetJSON(netPath, netBaseline()); err != nil {
		t.Fatal(err)
	}
	if _, err := CompareBenchFiles(basePath, netPath, DefaultThresholds(1)); err == nil {
		t.Fatal("sim-vs-net comparison did not error")
	}
}
