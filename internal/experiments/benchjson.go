package experiments

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"sort"

	"cubism/internal/cluster"
	"cubism/internal/grid"
	"cubism/internal/sim"
	"cubism/internal/telemetry"
)

// BenchSimKernel is one kernel's row in BENCH_sim.json.
type BenchSimKernel struct {
	Calls       int     `json:"calls"`
	Seconds     float64 `json:"seconds"`
	GFLOPS      float64 `json:"gflops"`
	FlopPerByte float64 `json:"flop_per_byte"`
	Share       float64 `json:"share"`
	Imbalance   float64 `json:"imbalance"`
}

// BenchSimLatency summarizes the step-latency distribution.
type BenchSimLatency struct {
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// BenchSimResult is the machine-readable benchmark record emitted next to
// the human-readable report, so the perf trajectory across PRs is diffable
// (compare two files with `diff` or a JSON tool).
type BenchSimResult struct {
	BlockSize     int                       `json:"block_size"`
	RankDims      [3]int                    `json:"rank_dims"`
	BlockDims     [3]int                    `json:"block_dims"`
	Steps         int                       `json:"steps"`
	Workers       int                       `json:"workers_per_rank"`
	GlobalCells   int64                     `json:"global_cells"`
	WallSeconds   float64                   `json:"wall_seconds"`
	PointsPerSec  float64                   `json:"points_per_second"`
	StepLatency   BenchSimLatency           `json:"step_latency"`
	StepImbalance float64                   `json:"step_imbalance"`
	Kernels       map[string]BenchSimKernel `json:"kernels"`
}

// percentile returns the p-quantile (0..1) of sorted xs by nearest-rank.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// RunBenchSim executes the instrumented multi-rank benchmark campaign and
// returns the machine-readable record.
func RunBenchSim(n, steps int) (BenchSimResult, error) {
	workers := max(runtime.NumCPU()/2, 1)
	cfg := sim.Config{
		Cluster: cluster.Config{
			RankDims:  [3]int{2, 1, 1},
			BlockDims: [3]int{2, 2, 2},
			BlockSize: n,
			Extent:    1,
			BC:        grid.PeriodicBC(),
			Workers:   workers,
			CFL:       0.3,
			Init:      testField,
		},
		Steps:     steps,
		DiagEvery: 1 << 30,
		// A non-nil telemetry set switches on the cross-rank step-time
		// reductions that feed the imbalance statistic.
		Telemetry: &telemetry.Set{},
	}
	var lats, imbs []float64
	summary, err := sim.Run(cfg, func(s sim.StepInfo) {
		lats = append(lats, s.WallMS)
		imbs = append(imbs, s.Imbalance)
	})
	if err != nil {
		return BenchSimResult{}, err
	}
	res := BenchSimResult{
		BlockSize:    n,
		RankDims:     cfg.Cluster.RankDims,
		BlockDims:    cfg.Cluster.BlockDims,
		Steps:        summary.Steps,
		Workers:      workers,
		GlobalCells:  summary.GlobalCells,
		WallSeconds:  summary.WallTime.Seconds(),
		PointsPerSec: summary.PointsPerSec,
		Kernels:      map[string]BenchSimKernel{},
	}
	sort.Float64s(lats)
	var sum float64
	for _, v := range lats {
		sum += v
	}
	if len(lats) > 0 {
		res.StepLatency = BenchSimLatency{
			MeanMS: sum / float64(len(lats)),
			P50MS:  percentile(lats, 0.50),
			P90MS:  percentile(lats, 0.90),
			P99MS:  percentile(lats, 0.99),
			MaxMS:  lats[len(lats)-1],
		}
	}
	for _, v := range imbs {
		res.StepImbalance += v
	}
	if len(imbs) > 0 {
		res.StepImbalance /= float64(len(imbs))
	}
	totalSec := 0.0
	for _, st := range summary.Kernels {
		totalSec += st.Total.Seconds()
	}
	for name, st := range summary.Kernels {
		share := 0.0
		if totalSec > 0 {
			share = st.Total.Seconds() / totalSec
		}
		res.Kernels[name] = BenchSimKernel{
			Calls:       st.N,
			Seconds:     st.Total.Seconds(),
			GFLOPS:      st.GFLOPS(),
			FlopPerByte: st.Intensity(),
			Share:       share,
			Imbalance:   st.Imbalance(),
		}
	}
	return res, nil
}

// BenchSim runs the instrumented simulation benchmark, prints the human
// summary to w and writes BENCH_sim.json-style output to jsonPath (skipped
// when jsonPath is empty).
func BenchSim(w io.Writer, n, steps int, jsonPath string) {
	header(w, "Instrumented simulation benchmark")
	res, err := RunBenchSim(n, steps)
	if err != nil {
		panic(err)
	}
	line(w, "%d ranks x %v blocks, N=%d, %d workers/rank, %d steps",
		res.RankDims[0]*res.RankDims[1]*res.RankDims[2], res.BlockDims, n, res.Workers, res.Steps)
	line(w, "throughput:      %10.2f Mpoints/s", res.PointsPerSec/1e6)
	line(w, "step latency ms: mean %.2f  p50 %.2f  p90 %.2f  p99 %.2f  max %.2f",
		res.StepLatency.MeanMS, res.StepLatency.P50MS, res.StepLatency.P90MS,
		res.StepLatency.P99MS, res.StepLatency.MaxMS)
	line(w, "step imbalance:  %10.3f (cross-rank (tmax-tmin)/tavg, mean over steps)", res.StepImbalance)
	line(w, "%-12s %8s %12s %10s %8s", "kernel", "calls", "GFLOP/s", "FLOP/B", "share")
	names := make([]string, 0, len(res.Kernels))
	for name := range res.Kernels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		k := res.Kernels[name]
		line(w, "%-12s %8d %12.3f %10.2f %7.1f%%", name, k.Calls, k.GFLOPS, k.FlopPerByte, 100*k.Share)
	}
	if jsonPath == "" {
		return
	}
	if err := WriteBenchSimJSON(jsonPath, res); err != nil {
		panic(err)
	}
	line(w, "wrote %s", jsonPath)
}

// WriteBenchSimJSON writes the record as indented JSON.
func WriteBenchSimJSON(path string, res BenchSimResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
