package experiments

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"

	"cubism/internal/cluster"
	"cubism/internal/core"
	"cubism/internal/grid"
	"cubism/internal/node"
	"cubism/internal/physics"
	"cubism/internal/sim"
	"cubism/internal/telemetry"
)

// BenchSimKernel is one kernel's row in BENCH_sim.json.
type BenchSimKernel struct {
	Calls       int     `json:"calls"`
	Seconds     float64 `json:"seconds"`
	GFLOPS      float64 `json:"gflops"`
	FlopPerByte float64 `json:"flop_per_byte"`
	Share       float64 `json:"share"`
	Imbalance   float64 `json:"imbalance"`
}

// BenchSimLatency summarizes the step-latency distribution.
type BenchSimLatency struct {
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// BenchSimMode is the fused-vs-staged ablation row: one execution model's
// throughput, latency and analytic UP traffic, plus the pool evidence that
// workers are spawned once (WorkerSpawns stays equal to PoolWorkers across
// the whole run).
type BenchSimMode struct {
	Pipeline          bool            `json:"pipeline"`
	PointsPerSec      float64         `json:"points_per_second"`
	StepLatency       BenchSimLatency `json:"step_latency"`
	UPBytesPerValue   int64           `json:"up_bytes_per_value"`
	StageBytesPerCell int64           `json:"stage_bytes_per_cell"`
	PoolWorkers       int             `json:"pool_workers"`
	WorkerSpawns      int64           `json:"worker_goroutine_spawns"`
}

// BenchSimRebalance records the live-migration measurement: a hilbert run
// started from deliberately skewed curve cuts, one forced mid-run rebalance,
// and the pool-load imbalance (max/avg − 1) measured before and after the
// migration. MetricsPresent lists the layout instrumentation series found in
// the telemetry registry — a structural invariant the compare gate holds.
type BenchSimRebalance struct {
	Layout          string   `json:"layout"`
	Ranks           int      `json:"ranks"`
	SkewCuts        []int    `json:"skew_cuts"`
	ImbalanceBefore float64  `json:"imbalance_before"`
	ImbalanceAfter  float64  `json:"imbalance_after"`
	MigratedBlocks  int      `json:"migrated_blocks"`
	MetricsPresent  []string `json:"metrics_present"`
}

// BenchSimResult is the machine-readable benchmark record emitted next to
// the human-readable report, so the perf trajectory across PRs is diffable
// (compare two files with `diff` or a JSON tool). The top-level fields
// describe the primary run; Modes holds the fused-vs-staged pair.
type BenchSimResult struct {
	BlockSize     int                       `json:"block_size"`
	RankDims      [3]int                    `json:"rank_dims"`
	BlockDims     [3]int                    `json:"block_dims"`
	Steps         int                       `json:"steps"`
	Workers       int                       `json:"workers_per_rank"`
	Pipeline      bool                      `json:"pipeline"`
	GlobalCells   int64                     `json:"global_cells"`
	WallSeconds   float64                   `json:"wall_seconds"`
	PointsPerSec  float64                   `json:"points_per_second"`
	StepLatency   BenchSimLatency           `json:"step_latency"`
	StepImbalance float64                   `json:"step_imbalance"`
	Kernels       map[string]BenchSimKernel `json:"kernels"`
	Modes         []BenchSimMode            `json:"modes"`
	Rebalance     *BenchSimRebalance        `json:"rebalance,omitempty"`
}

// percentile returns the p-quantile (0..1) of sorted xs by nearest-rank.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p*float64(len(sorted))+0.5) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// benchSimRun is the outcome of one execution-model measurement.
type benchSimRun struct {
	summary sim.Summary
	lats    []float64
	imbs    []float64
	pool    node.PoolStats
	mode    BenchSimMode
}

// stepLatency summarizes sorted step latencies.
func stepLatency(lats []float64) BenchSimLatency {
	if len(lats) == 0 {
		return BenchSimLatency{}
	}
	sort.Float64s(lats)
	var sum float64
	for _, v := range lats {
		sum += v
	}
	return BenchSimLatency{
		MeanMS: sum / float64(len(lats)),
		P50MS:  percentile(lats, 0.50),
		P90MS:  percentile(lats, 0.90),
		P99MS:  percentile(lats, 0.99),
		MaxMS:  lats[len(lats)-1],
	}
}

// runBenchSimMode measures one execution model (pipelined fused RHS+UP vs
// bulk-synchronous staged) on the standard benchmark decomposition.
func runBenchSimMode(n, steps, workers int, pipeline bool) (benchSimRun, error) {
	var run benchSimRun
	cfg := sim.Config{
		Cluster: cluster.Config{
			RankDims:  [3]int{2, 1, 1},
			BlockDims: [3]int{2, 2, 2},
			BlockSize: n,
			Extent:    1,
			BC:        grid.PeriodicBC(),
			Workers:   workers,
			CFL:       0.3,
			Pipeline:  pipeline,
			Init:      testField,
		},
		Steps:     steps,
		DiagEvery: 1 << 30,
		OnFinish: func(r *cluster.Rank) {
			if r.Comm.Rank() == 0 {
				run.pool = r.Engine.PoolStats()
			}
		},
		// A non-nil telemetry set switches on the cross-rank step-time
		// reductions that feed the imbalance statistic.
		Telemetry: &telemetry.Set{},
	}
	summary, err := sim.Run(cfg, func(s sim.StepInfo) {
		run.lats = append(run.lats, s.WallMS)
		run.imbs = append(run.imbs, s.Imbalance)
	})
	if err != nil {
		return run, err
	}
	run.summary = summary
	// Analytic per-stage traffic of the two models: fusion keeps the rhs
	// value in registers, dropping its write-back and re-read.
	upBytes := int64(core.UpdateBytesPerValue)
	stageBytes := core.RHSBytesPerCell(n) + int64(physics.NQ)*core.UpdateBytesPerValue
	if pipeline {
		upBytes = core.FusedUpdateBytesPerValue
		stageBytes = core.FusedStageBytesPerCell(n)
	}
	run.mode = BenchSimMode{
		Pipeline:          pipeline,
		PointsPerSec:      summary.PointsPerSec,
		StepLatency:       stepLatency(run.lats),
		UPBytesPerValue:   upBytes,
		StageBytesPerCell: stageBytes,
		PoolWorkers:       run.pool.Workers,
		WorkerSpawns:      run.pool.Spawned,
	}
	return run, nil
}

// runBenchSimRebalance measures one forced live rebalance on a deliberately
// skewed hilbert partition: rank 0 starts with 13 of the 16 blocks, a forced
// mid-run rebalance recuts the curve by measured pool load and migrates the
// reassigned blocks, and a final measure-only check (the threshold is set
// unreachably high) reads the post-migration imbalance over the remaining
// steps. The telemetry registry is scanned for the layout instrumentation
// series so the compare gate can hold their presence as a structural
// invariant.
func runBenchSimRebalance(n, workers int) (*BenchSimRebalance, error) {
	const steps = 6
	skew := []int{0, 13, 16}
	tel := &telemetry.Set{Metrics: telemetry.NewRegistry()}
	rec := &BenchSimRebalance{Layout: "hilbert", Ranks: 2, SkewCuts: skew}
	cfg := sim.Config{
		Cluster: cluster.Config{
			RankDims:   [3]int{2, 1, 1},
			BlockDims:  [3]int{2, 2, 2},
			BlockSize:  n,
			Extent:     1,
			BC:         grid.PeriodicBC(),
			Workers:    workers,
			CFL:        0.3,
			Pipeline:   true,
			Init:       testField,
			Layout:     rec.Layout,
			LayoutCuts: skew,
		},
		Steps:              steps,
		DiagEvery:          1 << 30,
		ForceRebalanceStep: 3,
		RebalanceEvery:     steps,
		RebalanceThreshold: 1e18, // the final check only measures
		Telemetry:          tel,
	}
	seen := 0
	_, err := sim.Run(cfg, func(s sim.StepInfo) {
		if !s.HasRebalance {
			return
		}
		seen++
		switch seen {
		case 1:
			rec.ImbalanceBefore = s.Rebalance.Imbalance
			rec.MigratedBlocks = s.Rebalance.Moved
		case 2:
			rec.ImbalanceAfter = s.Rebalance.Imbalance
		}
	})
	if err != nil {
		return nil, err
	}
	for _, name := range []string{"mpcf_layout_blocks", "mpcf_migrations_total"} {
		for id := range tel.Metrics.Snapshot() {
			if strings.HasPrefix(id, name) {
				rec.MetricsPresent = append(rec.MetricsPresent, name)
				break
			}
		}
	}
	sort.Strings(rec.MetricsPresent)
	return rec, nil
}

// RunBenchSim executes the instrumented multi-rank benchmark campaign in
// both execution models (fused pipeline and staged baseline) and returns
// the machine-readable record; primary selects which mode fills the
// top-level fields.
func RunBenchSim(n, steps int, primary bool) (BenchSimResult, error) {
	workers := max(runtime.NumCPU()/2, 1)
	staged, err := runBenchSimMode(n, steps, workers, false)
	if err != nil {
		return BenchSimResult{}, err
	}
	fused, err := runBenchSimMode(n, steps, workers, true)
	if err != nil {
		return BenchSimResult{}, err
	}
	rebalance, err := runBenchSimRebalance(n, workers)
	if err != nil {
		return BenchSimResult{}, err
	}
	main := fused
	if !primary {
		main = staged
	}
	res := BenchSimResult{
		BlockSize:    n,
		RankDims:     [3]int{2, 1, 1},
		BlockDims:    [3]int{2, 2, 2},
		Steps:        main.summary.Steps,
		Workers:      workers,
		Pipeline:     primary,
		GlobalCells:  main.summary.GlobalCells,
		WallSeconds:  main.summary.WallTime.Seconds(),
		PointsPerSec: main.summary.PointsPerSec,
		StepLatency:  main.mode.StepLatency,
		Kernels:      map[string]BenchSimKernel{},
		Modes:        []BenchSimMode{staged.mode, fused.mode},
		Rebalance:    rebalance,
	}
	for _, v := range main.imbs {
		res.StepImbalance += v
	}
	if len(main.imbs) > 0 {
		res.StepImbalance /= float64(len(main.imbs))
	}
	totalSec := 0.0
	for _, st := range main.summary.Kernels {
		totalSec += st.Total.Seconds()
	}
	for name, st := range main.summary.Kernels {
		share := 0.0
		if totalSec > 0 {
			share = st.Total.Seconds() / totalSec
		}
		res.Kernels[name] = BenchSimKernel{
			Calls:       st.N,
			Seconds:     st.Total.Seconds(),
			GFLOPS:      st.GFLOPS(),
			FlopPerByte: st.Intensity(),
			Share:       share,
			Imbalance:   st.Imbalance(),
		}
	}
	return res, nil
}

// BenchSim runs the instrumented simulation benchmark in both execution
// models, prints the human summary to w and writes BENCH_sim.json-style
// output to jsonPath (skipped when jsonPath is empty). pipeline selects the
// primary mode of the top-level record.
func BenchSim(w io.Writer, n, steps int, jsonPath string, pipeline bool) {
	header(w, "Instrumented simulation benchmark")
	res, err := RunBenchSim(n, steps, pipeline)
	if err != nil {
		panic(err)
	}
	line(w, "%d ranks x %v blocks, N=%d, %d workers/rank, %d steps",
		res.RankDims[0]*res.RankDims[1]*res.RankDims[2], res.BlockDims, n, res.Workers, res.Steps)
	for _, m := range res.Modes {
		name := "staged"
		if m.Pipeline {
			name = "fused"
		}
		line(w, "%-7s step ms: mean %.2f p90 %.2f | %8.2f Mpoints/s | UP %dB/value, stage %dB/cell | pool %d workers, %d spawns",
			name, m.StepLatency.MeanMS, m.StepLatency.P90MS, m.PointsPerSec/1e6,
			m.UPBytesPerValue, m.StageBytesPerCell, m.PoolWorkers, m.WorkerSpawns)
	}
	line(w, "throughput:      %10.2f Mpoints/s", res.PointsPerSec/1e6)
	line(w, "step latency ms: mean %.2f  p50 %.2f  p90 %.2f  p99 %.2f  max %.2f",
		res.StepLatency.MeanMS, res.StepLatency.P50MS, res.StepLatency.P90MS,
		res.StepLatency.P99MS, res.StepLatency.MaxMS)
	line(w, "step imbalance:  %10.3f (cross-rank (tmax-tmin)/tavg, mean over steps)", res.StepImbalance)
	if rb := res.Rebalance; rb != nil {
		line(w, "rebalance:       %s skew %v -> moved %d blocks, pool imbalance %.3f -> %.3f (metrics: %s)",
			rb.Layout, rb.SkewCuts, rb.MigratedBlocks, rb.ImbalanceBefore, rb.ImbalanceAfter,
			strings.Join(rb.MetricsPresent, ", "))
	}
	line(w, "%-12s %8s %12s %10s %8s", "kernel", "calls", "GFLOP/s", "FLOP/B", "share")
	names := make([]string, 0, len(res.Kernels))
	for name := range res.Kernels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		k := res.Kernels[name]
		line(w, "%-12s %8d %12.3f %10.2f %7.1f%%", name, k.Calls, k.GFLOPS, k.FlopPerByte, 100*k.Share)
	}
	if jsonPath == "" {
		return
	}
	if err := WriteBenchSimJSON(jsonPath, res); err != nil {
		panic(err)
	}
	line(w, "wrote %s", jsonPath)
}

// WriteBenchSimJSON writes the record as indented JSON.
func WriteBenchSimJSON(path string, res BenchSimResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
