package experiments

// The cloud benchmark: run the scenario engine's default cloud-collapse
// case at a fixed laptop-scale configuration and record both the machine
// performance (throughput, step-latency percentiles) and the physics
// observables (Figure-5 diagnostics from the scenario observables pipeline).
// The observables are deterministic for a fixed configuration — the cloud
// geometry is seeded and the step loop has no order-dependent reductions —
// so the compare gate can hold them to a tight relative tolerance while the
// rate checks stay as generous as the sim/net gates.

import (
	"encoding/json"
	"io"
	"os"
	"runtime"
	"sort"

	"cubism/internal/scenario"
	"cubism/internal/sim"
)

// BenchCloudResult is the machine-readable record of the cloud experiment
// (BENCH_cloud.json). The "observables" key doubles as the kind
// discriminator for DetectBenchKind, like "kernels" (sim) and
// "transports" (net).
type BenchCloudResult struct {
	Scenario  string `json:"scenario"`
	BlockSize int    `json:"block_size"`
	RankDims  [3]int `json:"rank_dims"`
	BlockDims [3]int `json:"block_dims"`
	Steps     int    `json:"steps"`
	Workers   int    `json:"workers_per_rank"`

	// Structural geometry of the case: seeded, so machine-independent.
	Bubbles      int     `json:"bubbles"`
	Beta         float64 `json:"beta"`
	VoidFraction float64 `json:"void_fraction"`
	RayleighTau  float64 `json:"rayleigh_tau"`

	GlobalCells  int64           `json:"global_cells"`
	WallSeconds  float64         `json:"wall_seconds"`
	PointsPerSec float64         `json:"points_per_second"`
	StepLatency  BenchSimLatency `json:"step_latency"`

	// Observables is the scenario metric map (peak_amp, wall_amp, ke_peak,
	// min_ratio, final_ratio, collapse_frac, r0_rel_err, mass_drift,
	// non_finite, beta, ...).
	Observables map[string]float64 `json:"observables"`
}

// RunBenchCloud executes the named scenario once and assembles the record.
// Zero blocks/blockSize/steps take the benchmark defaults (32³, 40 steps —
// the same configuration the short verify bands were measured at).
func RunBenchCloud(name string, blocks [3]int, blockSize, steps int) (BenchCloudResult, error) {
	if blocks == ([3]int{}) {
		blocks = [3]int{2, 2, 2}
	}
	if blockSize == 0 {
		blockSize = 16
	}
	if steps == 0 {
		steps = 40
	}
	workers := max(runtime.NumCPU()/2, 1)
	c, err := scenario.Build(name, scenario.Params{
		Blocks:    blocks,
		BlockSize: blockSize,
		Steps:     steps,
		Workers:   workers,
	})
	if err != nil {
		return BenchCloudResult{}, err
	}
	obs := scenario.NewObserver(c)
	var lats []float64
	summary, err := sim.Run(c.Config, func(s sim.StepInfo) {
		obs.OnStep(s)
		lats = append(lats, s.WallMS)
	})
	if err != nil {
		return BenchCloudResult{}, err
	}
	return BenchCloudResult{
		Scenario:     name,
		BlockSize:    blockSize,
		RankDims:     c.Config.Cluster.RankDims,
		BlockDims:    blocks,
		Steps:        summary.Steps,
		Workers:      workers,
		Bubbles:      len(c.Bubbles),
		Beta:         c.Beta,
		VoidFraction: c.VoidFraction,
		RayleighTau:  c.RayleighTau,
		GlobalCells:  summary.GlobalCells,
		WallSeconds:  summary.WallTime.Seconds(),
		PointsPerSec: summary.PointsPerSec,
		StepLatency:  stepLatency(lats),
		Observables:  obs.Metrics(),
	}, nil
}

// BenchCloud runs the cloud experiment, prints the human summary and writes
// the BENCH_cloud.json record (skipped when jsonPath is empty).
func BenchCloud(w io.Writer, name string, steps int, jsonPath string) {
	header(w, "Cloud cavitation collapse benchmark")
	res, err := RunBenchCloud(name, [3]int{}, 0, steps)
	if err != nil {
		panic(err)
	}
	line(w, "scenario %s: %d ranks x %v blocks, N=%d, %d workers/rank, %d steps",
		res.Scenario, res.RankDims[0]*res.RankDims[1]*res.RankDims[2],
		res.BlockDims, res.BlockSize, res.Workers, res.Steps)
	line(w, "cloud: %d bubbles, beta=%.3f, alpha0=%.4f, rayleigh tau=%.3e",
		res.Bubbles, res.Beta, res.VoidFraction, res.RayleighTau)
	line(w, "throughput:      %10.2f Mpoints/s", res.PointsPerSec/1e6)
	line(w, "step latency ms: mean %.2f  p50 %.2f  p90 %.2f  p99 %.2f  max %.2f",
		res.StepLatency.MeanMS, res.StepLatency.P50MS, res.StepLatency.P90MS,
		res.StepLatency.P99MS, res.StepLatency.MaxMS)
	names := make([]string, 0, len(res.Observables))
	for n := range res.Observables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		line(w, "  %-14s %.6g", n, res.Observables[n])
	}
	if jsonPath == "" {
		return
	}
	if err := WriteBenchCloudJSON(jsonPath, res); err != nil {
		panic(err)
	}
	line(w, "wrote %s", jsonPath)
}

// WriteBenchCloudJSON writes the record as indented JSON.
func WriteBenchCloudJSON(path string, res BenchCloudResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
