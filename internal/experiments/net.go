package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"cubism/internal/mpi"
)

// The net experiment measures the wire-transport point-to-point path that
// carries the ghost halos: a message-size sweep (1 KiB – 4 MiB, the range
// spanned by face payloads across block sizes) of ping-pong latency
// percentiles and one-way burst bandwidth, on both transports. The inproc
// numbers are the by-reference handoff cost (no serialization — the upper
// bound any wire can approach); the tcp numbers are a real loopback socket
// pair through the full frame codec, write-coalescing and read-pump path.

// BenchNetPoint is one message size's row.
type BenchNetPoint struct {
	SizeBytes int     `json:"size_bytes"`
	MeanUS    float64 `json:"latency_mean_us"`
	P50US     float64 `json:"latency_p50_us"`
	P90US     float64 `json:"latency_p90_us"`
	P99US     float64 `json:"latency_p99_us"`
	BWMBps    float64 `json:"bandwidth_mbps"`
}

// BenchNetTransport is one transport's sweep.
type BenchNetTransport struct {
	Transport string          `json:"transport"`
	Points    []BenchNetPoint `json:"points"`
}

// BenchNetResult is the machine-readable BENCH_net.json record.
type BenchNetResult struct {
	Iters      int                 `json:"iters_per_size"`
	Burst      int                 `json:"burst_frames"`
	Transports []BenchNetTransport `json:"transports"`
}

// netSweepSizes is the 1 KiB – 4 MiB sweep.
var netSweepSizes = []int{1 << 10, 4 << 10, 16 << 10, 64 << 10, 256 << 10, 1 << 20, 4 << 20}

// netPinger is rank 0's body: per size, a warmed-up ping-pong latency
// sample set followed by a one-way burst timed to its ack.
func netPinger(c *mpi.Comm, iters, burst int) []BenchNetPoint {
	tagPing, tagPong := mpi.TagStream(1), mpi.TagStream(2)
	tagBurst, tagAck := mpi.TagStream(3), mpi.TagStream(4)
	var pts []BenchNetPoint
	for _, size := range netSweepSizes {
		payload := make([]byte, size)
		for i := range payload {
			payload[i] = byte(i)
		}
		for i := 0; i < 3; i++ { // warmup: page in buffers, settle the path
			c.SendBytes(1, tagPing, payload)
			c.RecvBytes(1, tagPong)
		}
		lats := make([]float64, 0, iters)
		for i := 0; i < iters; i++ {
			t0 := time.Now()
			c.SendBytes(1, tagPing, payload)
			c.RecvBytes(1, tagPong)
			// Half the round trip is the conventional one-way latency.
			lats = append(lats, time.Since(t0).Seconds()/2*1e6)
		}
		sort.Float64s(lats)
		var mean float64
		for _, v := range lats {
			mean += v
		}
		mean /= float64(len(lats))

		t0 := time.Now()
		for i := 0; i < burst; i++ {
			c.SendBytes(1, tagBurst, payload)
		}
		c.RecvBytes(1, tagAck) // receiver acks after consuming the whole burst
		elapsed := time.Since(t0).Seconds()
		bw := 0.0
		if elapsed > 0 {
			bw = float64(burst) * float64(size) / 1e6 / elapsed
		}
		pts = append(pts, BenchNetPoint{
			SizeBytes: size,
			MeanUS:    mean,
			P50US:     percentile(lats, 0.50),
			P90US:     percentile(lats, 0.90),
			P99US:     percentile(lats, 0.99),
			BWMBps:    bw,
		})
	}
	return pts
}

// netEchoer is rank 1's body, mirroring netPinger's message pattern.
func netEchoer(c *mpi.Comm, iters, burst int) {
	tagPing, tagPong := mpi.TagStream(1), mpi.TagStream(2)
	tagBurst, tagAck := mpi.TagStream(3), mpi.TagStream(4)
	for range netSweepSizes {
		for i := 0; i < 3+iters; i++ {
			c.SendBytes(0, tagPong, c.RecvBytes(0, tagPing))
		}
		for i := 0; i < burst; i++ {
			c.RecvBytes(0, tagBurst)
		}
		c.SendBytes(0, tagAck, []byte{1})
	}
}

// RunBenchNet executes the sweep on both transports and returns the record.
func RunBenchNet(iters, burst int) (BenchNetResult, error) {
	res := BenchNetResult{Iters: iters, Burst: burst}

	// inproc: a 2-rank in-process world.
	var inprocPts []BenchNetPoint
	w := mpi.NewWorld(2)
	w.Run(func(c *mpi.Comm) {
		if c.Rank() == 0 {
			inprocPts = netPinger(c, iters, burst)
		} else {
			netEchoer(c, iters, burst)
		}
	})
	res.Transports = append(res.Transports, BenchNetTransport{Transport: "inproc", Points: inprocPts})

	// tcp: two single-rank worlds in this process, meshed over loopback.
	// The coordinator listener is pre-bound so no port is guessed.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return res, fmt.Errorf("bench net: coordinator listener: %v", err)
	}
	coord := ln.Addr().String()
	var tcpPts []BenchNetPoint
	errs := make([]error, 2)
	var wg sync.WaitGroup
	for r := 0; r < 2; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			cfg := mpi.TCPConfig{Rank: rank, Size: 2, Coord: coord}
			if rank == 0 {
				cfg.CoordListener = ln
			}
			world, err := mpi.ConnectTCP(cfg)
			if err != nil {
				errs[rank] = err
				return
			}
			world.Run(func(c *mpi.Comm) {
				if c.Rank() == 0 {
					tcpPts = netPinger(c, iters, burst)
				} else {
					netEchoer(c, iters, burst)
				}
			})
			errs[rank] = world.Err()
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return res, err
		}
	}
	res.Transports = append(res.Transports, BenchNetTransport{Transport: "tcp", Points: tcpPts})
	return res, nil
}

// BenchNet runs the sweep, prints the human table to w and writes
// BENCH_net.json-style output to jsonPath (skipped when empty).
func BenchNet(w io.Writer, jsonPath string) {
	header(w, "Wire transport benchmark (ping-pong latency, burst bandwidth)")
	res, err := RunBenchNet(40, 8)
	if err != nil {
		panic(err)
	}
	for _, tr := range res.Transports {
		line(w, "%s:", tr.Transport)
		line(w, "  %10s %12s %12s %12s %12s %14s",
			"size", "mean us", "p50 us", "p90 us", "p99 us", "MB/s")
		for _, p := range tr.Points {
			line(w, "  %10d %12.2f %12.2f %12.2f %12.2f %14.1f",
				p.SizeBytes, p.MeanUS, p.P50US, p.P90US, p.P99US, p.BWMBps)
		}
	}
	if jsonPath == "" {
		return
	}
	if err := WriteBenchNetJSON(jsonPath, res); err != nil {
		panic(err)
	}
	line(w, "wrote %s", jsonPath)
}

// WriteBenchNetJSON writes the record as indented JSON.
func WriteBenchNetJSON(path string, res BenchNetResult) error {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
