package experiments

import (
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"cubism/internal/cluster"
	"cubism/internal/compress"
	"cubism/internal/core"
	"cubism/internal/grid"
	"cubism/internal/mpi"
	"cubism/internal/node"
	"cubism/internal/physics"
	"cubism/internal/roofline"
	"cubism/internal/wavelet"
)

// Table3 regenerates the operational-intensity table (naive vs reordered
// data layout) from the kernels' analytic FLOP and traffic counts.
//
// Paper values: RHS 1.4 -> 21 FLOP/B (15X), DT 1.3 -> 5.1 (3.9X), UP 0.2
// unchanged.
func Table3(w io.Writer, n int) {
	header(w, "Table 3: potential gain due to data-reordering (FLOP/B)")
	rhsN := core.OperationalIntensityRHSNaive(n)
	rhsR := core.OperationalIntensityRHS(n)
	dtN := core.OperationalIntensityDTNaive()
	dtR := core.OperationalIntensityDT()
	up := core.OperationalIntensityUP()
	line(w, "%-12s %12s %12s %12s", "", "RHS", "DT", "UP")
	line(w, "%-12s %9.1f FB %9.1f FB %9.1f FB", "Naive", rhsN, dtN, up)
	line(w, "%-12s %9.1f FB %9.1f FB %9.1f FB", "Reordered", rhsR, dtR, up)
	line(w, "%-12s %11.1fX %11.1fX %11.1fX", "Factor", rhsR/rhsN, dtR/dtN, 1.0)
	line(w, "%-12s %12s %12s %12s", "paper", "1.4->21 (15X)", "1.3->5.1 (3.9X)", "0.2 (1X)")
	bgq := roofline.BGQ
	line(w, "BGQ ridge point: %.1f FLOP/B -> reordered RHS is compute-bound, UP stays memory-bound", bgq.Ridge())
}

// Table4Result carries the compression work-imbalance statistics.
type Table4Result struct {
	DecG, EncG, IOG float64
	DecP, EncP, IOP float64
}

// Table4 regenerates the work-imbalance table of the compression stages,
// (tmax-tmin)/tavg across workers, for Γ and p.
//
// Paper values: Γ DEC 30% ENC 390% IO 5%; p DEC 22% ENC 2100% IO 15%.
func Table4(w io.Writer, n int) Table4Result {
	header(w, "Table 4: work imbalance in the data compression")
	g := cloudGrid(n, 64/n, 7)
	workers := runtime.NumCPU()
	if workers > 8 {
		workers = 8
	}
	if workers < 4 {
		workers = 4
	}
	serial := runtime.GOMAXPROCS(0) == 1
	if serial {
		line(w, "(single hardware thread: timing-based imbalance is meaningless;")
		line(w, " DEC uses per-worker wall time, ENC the per-worker stream-size spread,")
		line(w, " which is the data dependence that drives the paper's ENC imbalance)")
	}
	var res Table4Result
	measure := func(q compress.Quantity, eps float64) (dec, enc, ioImb float64) {
		c, stats, err := compress.Compress(g, q, compress.Options{
			Epsilon: eps, Encoder: "zlib", Workers: workers,
		})
		if err != nil {
			panic(err)
		}
		dec = compress.Imbalance(stats.DecTimes)
		enc = compress.Imbalance(stats.EncTimes)
		if serial {
			// Size-based proxies independent of scheduling.
			sizes := make([]time.Duration, len(c.Streams))
			for i, s := range c.Streams {
				sizes[i] = time.Duration(len(s))
			}
			enc = compress.Imbalance(sizes)
		}
		// IO imbalance: per-worker write times to a shared file (size
		// variance dominates).
		dir, err := os.MkdirTemp("", "mpcf-t4-*")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		f, err := os.Create(filepath.Join(dir, "payload.bin"))
		if err != nil {
			panic(err)
		}
		defer f.Close()
		ioTimes := make([]time.Duration, len(c.Streams))
		// Two passes: the first warms the page cache and file allocation so
		// the measured pass reflects size-driven variance, as on a parallel
		// file system in steady state.
		for pass := 0; pass < 2; pass++ {
			off := int64(0)
			for i, s := range c.Streams {
				t0 := time.Now()
				if _, err := f.WriteAt(s, off); err != nil {
					panic(err)
				}
				ioTimes[i] = time.Since(t0)
				off += int64(len(s))
			}
		}
		ioImb = compress.Imbalance(ioTimes)
		return
	}
	res.DecG, res.EncG, res.IOG = measure(compress.Gamma, 1e-3)
	res.DecP, res.EncP, res.IOP = measure(compress.Pressure, 1e-2)
	line(w, "%-10s %8s %8s %8s   (workers=%d)", "", "DEC", "ENC", "IO", workers)
	line(w, "%-10s %7.0f%% %7.0f%% %7.0f%%", "Gamma", 100*res.DecG, 100*res.EncG, 100*res.IOG)
	line(w, "%-10s %7.0f%% %7.0f%% %7.0f%%", "Pressure", 100*res.DecP, 100*res.EncP, 100*res.IOP)
	line(w, "%-10s %8s %8s %8s", "paper G", "30%", "390%", "5%")
	line(w, "%-10s %8s %8s %8s", "paper p", "22%", "2100%", "15%")
	line(w, "shape: encoding imbalance >> decimation imbalance (data-dependent stream sizes)")
	return res
}

// rackModel estimates the per-kernel peak fraction at a given rack count by
// combining (a) the issue-rate bound of the audited instruction mix, (b)
// the roofline bound on BGQ, (c) the implementation efficiency measured on
// this host (sustained/roofline-attainable), and (d) an analytic
// communication overhead for the halo exchange at that scale.
type rackModel struct {
	n          int
	hostEff    map[string]float64 // measured efficiency per kernel
	issueBound float64            // RHS issue-rate bound (Table 8 ALL)
}

func newRackModel(n int, minDur time.Duration) *rackModel {
	host := roofline.MeasureHost()
	eff := map[string]float64{}
	// Sustained single-core GFLOP/s relative to the host roofline bound for
	// the kernel's operational intensity.
	rhs := MeasureRHS(n, false, false, minDur)
	eff["RHS"] = rhs / host.Attainable(core.OperationalIntensityRHS(n))
	dt := MeasureDT(n, false, minDur)
	eff["DT"] = dt / host.Attainable(core.OperationalIntensityDT())
	up := MeasureUP(n, false, minDur)
	eff["UP"] = up / host.Attainable(core.OperationalIntensityUP())
	for k, v := range eff {
		if v > 1 {
			eff[k] = 1 // cache effects can push past the DRAM roofline
		}
		_ = k
	}
	mix := core.InstructionMix(n)
	issue := mix[len(mix)-1].PeakBound
	return &rackModel{n: n, hostEff: eff, issueBound: issue}
}

// commOverhead returns the fraction of RHS time spent in the (non-hidden)
// halo exchange for the paper's production geometry: a 1024³-cell
// subdomain per node, 6 messages of 3-cell-deep faces per step stage,
// 2 GB/s per link, overlapped with the interior computation (the paper
// expects compute one order of magnitude above comm; the residual
// non-overlapped fraction grows slowly with machine size through network
// contention, modeled at 1% per 4x rack increase).
func commOverhead(racks int) float64 {
	const base = 0.02
	return base + 0.01*math.Log2(float64(racks))/2
}

// kernelPeak returns the modeled peak fraction of a kernel on BGQ.
func (m *rackModel) kernelPeak(kernel string, racks int) float64 {
	bgq := roofline.BGQ
	var oi float64
	switch kernel {
	case "RHS":
		oi = core.OperationalIntensityRHS(m.n)
	case "DT":
		oi = core.OperationalIntensityDT()
	case "UP":
		oi = core.OperationalIntensityUP()
	}
	bound := bgq.PeakFraction(oi)
	if kernel == "RHS" && m.issueBound < bound {
		bound = m.issueBound
	}
	frac := bound * m.hostEff[kernel]
	if racks > 1 {
		frac *= 1 - commOverhead(racks)
	}
	if kernel == "DT" && racks > 1 {
		// The global scalar reduction serializes; the paper observes 18%
		// (node) -> 7% (rack) -> 5% (24+ racks).
		frac *= 0.4
	}
	return frac
}

// Table5 regenerates the achieved-performance table: per-kernel and overall
// peak fractions at 1, 24 and 96 racks (modeled; see DESIGN.md), plus this
// host's measured sustained GFLOP/s for grounding.
//
// Paper values: RHS 60/57/55%, DT 7/5/5%, UP 2/2/2%, ALL 53/51/50%;
// 96 racks = 11 PFLOP/s total.
func Table5(w io.Writer, n int, minDur time.Duration) {
	header(w, "Table 5: achieved performance (modeled on BGQ; host-calibrated)")
	m := newRackModel(n, minDur)
	line(w, "host-measured kernel efficiency vs roofline: RHS %.2f  DT %.2f  UP %.2f; RHS issue bound %.2f",
		m.hostEff["RHS"], m.hostEff["DT"], m.hostEff["UP"], m.issueBound)
	// Time shares from the paper's step composition: RHS ~89%, UP ~9%,
	// DT ~2% of kernel time.
	shares := map[string]float64{"RHS": 0.89, "DT": 0.02, "UP": 0.09}
	line(w, "%-22s %8s %8s %8s %8s %14s", "", "RHS", "DT", "UP", "ALL", "PFLOP/s (ALL)")
	for _, racks := range []int{1, 24, 96} {
		rhs := m.kernelPeak("RHS", racks)
		dt := m.kernelPeak("DT", racks)
		up := m.kernelPeak("UP", racks)
		// Overall peak fraction: total FLOPs / (total time x peak).
		// FLOP shares follow from time shares x peak fractions.
		flops := shares["RHS"]*rhs + shares["DT"]*dt + shares["UP"]*up
		all := flops // total time is the share-weighted sum (normalized)
		pf := all * float64(racks) * roofline.RackGFLOPS / 1e6
		line(w, "%2d rack(s) [%% of peak]  %7.0f%% %7.0f%% %7.0f%% %7.0f%% %14.2f", racks,
			100*rhs, 100*dt, 100*up, 100*all, pf)
	}
	line(w, "%-22s %8s %8s %8s %8s %14s", "paper 1 rack", "60%", "7%", "2%", "53%", "-")
	line(w, "%-22s %8s %8s %8s %8s %14s", "paper 24 racks", "57%", "5%", "2%", "51%", "2.55")
	line(w, "%-22s %8s %8s %8s %8s %14s", "paper 96 racks", "55%", "5%", "2%", "50%", "10.14 (11 RHS)")
}

// Table6 regenerates the node-to-cluster degradation: the node layer alone
// (no MPI) against the cluster layer with ghost messages, measured on this
// host with simulated ranks.
//
// Paper values: RHS 62->60%, DT 18->7%, UP 3->2%, ALL 55->53%.
func Table6(w io.Writer, n int, minDur time.Duration) {
	header(w, "Table 6: node-to-cluster performance degradation (host-measured)")
	workers := runtime.NumCPU() / 2
	if workers < 1 {
		workers = 1
	}
	// Node layer: engine without any communication.
	nodeRate := measureEngineRHS(n, 2, workers, nil, minDur)
	nodeScaled := nodeRate / float64(workers)
	// Cluster layer: the same evaluation behind the full exchange path. On
	// hosts with fewer than 8 hardware threads a multi-rank world would
	// measure oversubscription, not communication, so a single rank with
	// periodic self-messages carries the same message volume instead.
	ranks := 8
	if runtime.NumCPU() < 8 {
		ranks = 1
	}
	perRank := workers / ranks
	if perRank < 1 {
		perRank = 1
	}
	clusterRate := measureClusterRHS(n, 2, ranks, perRank, minDur)
	clusterScaled := clusterRate / float64(ranks*perRank)
	deg := clusterScaled / nodeScaled
	line(w, "node layer    RHS %8.2f GFLOP/s/worker (workers=%d)", nodeScaled, workers)
	line(w, "cluster layer RHS %8.2f GFLOP/s/worker (%d rank(s) x %d workers, ghost messages on)", clusterScaled, ranks, perRank)
	line(w, "degradation   %.0f%% of node-layer rate (paper: 60/62 = 97%%)", 100*deg)
	line(w, "(a ratio near or above 100%% means the in-process transport makes the exchange")
	line(w, " nearly free; the paper's ~3%% loss comes from real network latency)")
}

// measureEngineRHS runs the node engine over nb³ blocks and returns
// sustained GFLOP/s.
func measureEngineRHS(n, nb, workers int, bc *grid.BC, minDur time.Duration) float64 {
	g := grid.New(grid.Desc{N: n, NBX: nb, NBY: nb, NBZ: nb, H: 1.0 / float64(n*nb)})
	fillGrid(g, testField)
	useBC := grid.PeriodicBC()
	if bc != nil {
		useBC = *bc
	}
	e := node.New(g, useBC, workers, false)
	outs := make([][]float32, len(g.Blocks))
	for i := range outs {
		outs[i] = make([]float32, n*n*n*physics.NQ)
	}
	flops := int64(g.Cells()) * core.RHSFlopsPerCell(n)
	return KernelRate(flops, minDur, func() { e.ComputeRHS(g.Blocks, outs) })
}

// measureClusterRHS runs 8 simulated ranks, each evaluating its blocks with
// halo exchange, and returns the aggregate sustained GFLOP/s. Every rank
// executes the same fixed repetition count (the exchange is collective).
func measureClusterRHS(n, nb, ranks, workersPerRank int, minDur time.Duration) float64 {
	dims := [3]int{2, 2, 2}
	if ranks == 1 {
		dims = [3]int{1, 1, 1}
	}
	world := mpi.NewWorld(ranks)
	var aggregate float64
	world.Run(func(comm *mpi.Comm) {
		r := cluster.NewRank(comm, cluster.Config{
			RankDims:  dims,
			BlockDims: [3]int{nb, nb, nb},
			BlockSize: n,
			Extent:    1,
			BC:        grid.PeriodicBC(),
			Workers:   workersPerRank,
			CFL:       0.3,
			Init:      testField,
		})
		r.ComputeRHSOnly() // warm-up
		// Calibrate the repetition count on rank 0, then share it.
		var reps float64
		if comm.Rank() == 0 {
			t0 := time.Now()
			r.ComputeRHSOnly()
			per := time.Since(t0)
			reps = math.Max(2, minDur.Seconds()/math.Max(per.Seconds(), 1e-9))
		} else {
			r.ComputeRHSOnly() // keep the collective exchange aligned
		}
		reps = comm.Allreduce(reps, mpi.MaxOp)
		comm.Barrier()
		start := time.Now()
		for i := 0; i < int(reps); i++ {
			r.ComputeRHSOnly()
		}
		comm.Barrier()
		if comm.Rank() == 0 {
			elapsed := time.Since(start).Seconds()
			flops := float64(r.G.Cells()) * float64(core.RHSFlopsPerCell(n)) * reps * float64(comm.Size())
			aggregate = flops / elapsed / 1e9
		}
	})
	return aggregate
}

// Table7 regenerates the core-layer comparison: scalar ("C++") vs 4-lane
// vector ("QPX") implementations of RHS, DT, UP and FWT.
//
// Paper values (GFLOP/s): RHS 2.21->8.27 (3.7X), DT 0.90->1.96 (2.2X),
// UP 0.30->0.29 (1X), FWT 0.40->1.29 (3.2X). The Go vector model executes
// its four lanes serially, so the measured improvement isolates the
// *structural* benefits (branch elimination, fused arithmetic, SoA access);
// the hardware-SIMD projection multiplies the structural gain by the lane
// width wherever the kernel is not memory-bound.
func Table7(w io.Writer, n int, minDur time.Duration) {
	header(w, "Table 7: core-layer kernels, scalar vs QPX-model vector")
	type row struct {
		name           string
		scalar, vector float64
		memBound       bool
	}
	rows := []row{
		{name: "RHS", scalar: MeasureRHS(n, false, false, minDur), vector: MeasureRHS(n, true, false, minDur)},
		{name: "DT", scalar: MeasureDT(n, false, minDur), vector: MeasureDT(n, true, minDur)},
		{name: "UP", scalar: MeasureUP(n, false, minDur), vector: MeasureUP(n, true, minDur), memBound: true},
		{name: "FWT", scalar: measureFWT(n, false, minDur), vector: measureFWT(n, true, minDur)},
	}
	line(w, "%-6s %14s %14s %12s %24s", "", "scalar GF/s", "vector GF/s", "measured X", "HW-SIMD projection X")
	for _, r := range rows {
		imp := r.vector / r.scalar
		proj := imp * 4
		if r.memBound {
			proj = imp // memory-bound: lanes do not help (paper: UP 1X)
		}
		line(w, "%-6s %14.2f %14.2f %11.2fX %23.1fX", r.name, r.scalar, r.vector, imp, proj)
	}
	line(w, "paper: RHS 2.21->8.27 (3.7X)  DT 0.90->1.96 (2.2X)  UP 0.30->0.29 (1X)  FWT 0.40->1.29 (3.2X)")
}

// measureFWT returns sustained GFLOP/s of the forward wavelet transform.
func measureFWT(n int, vector bool, minDur time.Duration) float64 {
	if n&(n-1) != 0 {
		n = 16
	}
	tr := wavelet.NewFWT3(n)
	data := make([]float32, n*n*n)
	for i := range data {
		data[i] = float32(i%97) * 0.25
	}
	flops := int64(n*n*n) * wavelet.FlopsPerCell
	f := func() { tr.Forward(data) }
	if vector {
		f = func() { tr.ForwardVec(data) }
	}
	return KernelRate(flops, minDur, f)
}

// Table8 regenerates the issue-rate analysis: FLOP/instruction density per
// RHS stage and the implied peak bound, from the instrumented instruction
// audit.
//
// Paper values: CONV 1% 1.10x4 55%; WENO 83% 1.56x4 78%; HLLE 13% 1.30x4
// 65%; SUM 2% 1.22x4 61%; BACK <1% 1.28x4 64%; ALL 1.51x4 76%.
func Table8(w io.Writer, n int) {
	header(w, "Table 8: performance estimation based on the issue rate")
	line(w, "%-6s %8s %14s %8s", "stage", "weight", "FLOP/instr", "peak")
	for _, r := range core.InstructionMix(n) {
		line(w, "%-6s %7.0f%% %10.2f x 4 %7.0f%%", r.Stage, 100*r.Weight, r.Density, 100*r.PeakBound)
	}
	line(w, "paper: CONV 1%% 1.10 55%% | WENO 83%% 1.56 78%% | HLLE 13%% 1.30 65%% | SUM 2%% 1.22 61%% | BACK <1%% 1.28 64%% | ALL 1.51 76%%")
}

// Table9 regenerates the micro-fusion comparison: the WENO->HLLE pipeline
// with materialized face states (baseline) against the fused per-face path.
//
// Paper values: 7.9 -> 9.2 GFLOP/s (1.2X GFLOP/s, 1.3X time).
func Table9(w io.Writer, n int, minDur time.Duration) {
	header(w, "Table 9: WENO kernel, baseline (staged) vs micro-fused")
	for _, vec := range []bool{false, true} {
		name := "scalar"
		if vec {
			name = "qpx"
		}
		staged := MeasureRHS(n, vec, true, minDur)
		fused := MeasureRHS(n, vec, false, minDur)
		line(w, "%-8s staged %7.2f GF/s   fused %7.2f GF/s   improvement %.2fX",
			name, staged, fused, fused/staged)
	}
	line(w, "paper (QPX): baseline 7.9 -> fused 9.2 GFLOP/s (1.2X GFLOP/s, 1.3X cycles)")
}

// Table10 regenerates the performance-portability table: the measured
// kernel efficiencies projected onto the Cray XE6 and XC30 machine models.
//
// Paper values (per node): Piz Daint RHS 40% DT 18% UP 2%; Monte Rosa RHS
// 37% DT 16% UP 2%.
func Table10(w io.Writer, n int, minDur time.Duration) {
	header(w, "Table 10: performance portability across machine models")
	m := newRackModel(n, minDur)
	ois := map[string]float64{
		"RHS": core.OperationalIntensityRHS(n),
		"DT":  core.OperationalIntensityDT(),
		"UP":  core.OperationalIntensityUP(),
	}
	machines := []roofline.Machine{roofline.BGQ, roofline.PizDaint, roofline.MonteRosa}
	line(w, "%-24s %8s %8s %8s", "machine", "RHS", "DT", "UP")
	for _, mc := range machines {
		rhs := mc.Project(ois["RHS"], m.hostEff["RHS"])
		// On the Cray nodes the paper reaches a lower RHS fraction (40%)
		// because the SSE port cannot express all QPX idioms; apply the
		// issue bound like BGQ.
		if m.issueBound < 1 {
			rhs = math.Min(rhs, m.issueBound*m.hostEff["RHS"])
		}
		dt := mc.Project(ois["DT"], m.hostEff["DT"])
		up := mc.Project(ois["UP"], m.hostEff["UP"])
		line(w, "%-24s %7.0f%% %7.0f%% %7.0f%%", mc.Name, 100*rhs, 100*dt, 100*up)
	}
	line(w, "%-24s %8s %8s %8s", "paper Piz Daint", "40%", "18%", "2%")
	line(w, "%-24s %8s %8s %8s", "paper Monte Rosa", "37%", "16%", "2%")
	line(w, "shape: RHS compute-bound everywhere; UP pinned at the memory roofline (~2%%)")
}
