package experiments

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

func ioBaseline() BenchIOResult {
	return BenchIOResult{
		Workers: 4, BlockSize: 16, Blocks: 64, Epsilon: 1e-2,
		Encoders: []BenchIOEncoder{
			{Encoder: "zlib", Deterministic: false, EncodedBytes: 58000,
				ParallelBitwise: true, Lossless: true, Ratio: 17.8, EncMBps: 50,
				ENCImbalance: 1.2, DECImbalance: 0.8},
			{Encoder: "huff", Deterministic: true, EncodedBytes: 194008,
				ParallelBitwise: true, Lossless: true, Ratio: 5.4, EncMBps: 70,
				ENCImbalance: 0.9, DECImbalance: 1.1},
		},
		StreamRanks: 2, FrameMatchesFile: true, FrameBytes: 394072,
		WallSeconds: 0.2,
	}
}

func TestCompareIOIdenticalPasses(t *testing.T) {
	r := CompareBenchIO(ioBaseline(), ioBaseline(), DefaultThresholds(1))
	if !r.OK() {
		t.Fatalf("identical records regressed: %v", r.Regressions)
	}
	if r.Checks == 0 {
		t.Fatal("no checks performed")
	}
}

func TestCompareIOStructuralIsExact(t *testing.T) {
	fresh := ioBaseline()
	fresh.Encoders[1].ParallelBitwise = false // parallel path diverged
	r := CompareBenchIO(ioBaseline(), fresh, DefaultThresholds(1))
	if r.OK() {
		t.Fatal("a non-bitwise parallel path passed the gate")
	}
	if !strings.Contains(strings.Join(r.Regressions, "\n"), "parallel_bitwise") {
		t.Fatalf("regression does not name parallel_bitwise: %v", r.Regressions)
	}

	fresh = ioBaseline()
	fresh.Encoders[1].EncodedBytes++ // deterministic coder's bytes drifted
	if r := CompareBenchIO(ioBaseline(), fresh, DefaultThresholds(1)); r.OK() {
		t.Fatal("a deterministic coder's size drift passed the gate")
	}

	fresh = ioBaseline()
	fresh.Encoders[0].EncodedBytes += 500 // zlib may drift across Go releases
	if r := CompareBenchIO(ioBaseline(), fresh, DefaultThresholds(1)); !r.OK() {
		t.Fatalf("zlib size drift failed the gate: %v", r.Regressions)
	}

	fresh = ioBaseline()
	fresh.FrameMatchesFile = false
	if r := CompareBenchIO(ioBaseline(), fresh, DefaultThresholds(1)); r.OK() {
		t.Fatal("a frame/file mismatch passed the gate")
	}
}

func TestCompareIOImbalanceIsOnlySanityChecked(t *testing.T) {
	fresh := ioBaseline()
	fresh.Encoders[0].ENCImbalance = 3.9 // scheduling noise, not a regression
	fresh.Encoders[1].ENCImbalance = 0.0
	if r := CompareBenchIO(ioBaseline(), fresh, DefaultThresholds(1)); !r.OK() {
		t.Fatalf("imbalance magnitude failed the gate: %v", r.Regressions)
	}
	fresh.Encoders[1].ENCImbalance = -0.1
	if r := CompareBenchIO(ioBaseline(), fresh, DefaultThresholds(1)); r.OK() {
		t.Fatal("a negative imbalance statistic passed the gate")
	}
}

func TestCompareIOConfigMismatch(t *testing.T) {
	fresh := ioBaseline()
	fresh.Workers = 8
	r := CompareBenchIO(ioBaseline(), fresh, DefaultThresholds(1))
	if r.OK() {
		t.Fatal("pool-width mismatch passed")
	}
	if !strings.Contains(r.Regressions[0], "configuration mismatch") {
		t.Fatalf("unexpected failure message: %v", r.Regressions)
	}
}

func TestDetectBenchKindIO(t *testing.T) {
	data, err := json.Marshal(ioBaseline())
	if err != nil {
		t.Fatal(err)
	}
	kind, err := DetectBenchKind(data)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "io" {
		t.Fatalf("kind = %q, want io", kind)
	}
}

// TestRunBenchIO exercises the live experiment at the benchmark defaults.
// The structural invariants the gate holds on the committed baseline must
// hold here: every encoder bitwise-equal across schedules and lossless,
// the deterministic coders non-empty, and the streamed frame identical to
// the collective file.
func TestRunBenchIO(t *testing.T) {
	res, err := RunBenchIO(16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Encoders) != len(benchIOEncoders) {
		t.Fatalf("%d encoder rows, want %d", len(res.Encoders), len(benchIOEncoders))
	}
	for _, row := range res.Encoders {
		if !row.ParallelBitwise {
			t.Errorf("%s: parallel output is not bitwise-identical to serial", row.Encoder)
		}
		if !row.Lossless {
			t.Errorf("%s: parallel output did not decode", row.Encoder)
		}
		if row.EncodedBytes <= 0 {
			t.Errorf("%s: encoded %d bytes", row.Encoder, row.EncodedBytes)
		}
		if row.ENCImbalance < 0 {
			t.Errorf("%s: negative ENC imbalance %g", row.Encoder, row.ENCImbalance)
		}
	}
	if !res.FrameMatchesFile {
		t.Error("streamed frame differs from the collective file")
	}
	if res.FrameBytes <= 0 {
		t.Errorf("frame bytes %d", res.FrameBytes)
	}
}

// TestCommittedIOBaselineParses guards the checked-in baseline: it must
// detect as an io record and hold the bitwise/lossless/frame invariants
// the CI compare reruns against.
func TestCommittedIOBaselineParses(t *testing.T) {
	data, err := os.ReadFile("../../bench/BENCH_io.json")
	if err != nil {
		t.Skipf("no committed baseline: %v", err)
	}
	kind, err := DetectBenchKind(data)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "io" {
		t.Fatalf("kind = %q, want io", kind)
	}
	var res BenchIOResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Encoders) == 0 || !res.FrameMatchesFile {
		t.Fatalf("baseline incomplete or non-clean: %+v", res)
	}
	for _, row := range res.Encoders {
		if !row.ParallelBitwise || !row.Lossless {
			t.Fatalf("baseline encoder %s not bitwise/lossless: %+v", row.Encoder, row)
		}
		if row.ENCImbalance < 0 {
			t.Fatalf("baseline encoder %s has negative imbalance", row.Encoder)
		}
	}
}
