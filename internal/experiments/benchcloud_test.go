package experiments

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func cloudBaseline() BenchCloudResult {
	return BenchCloudResult{
		Scenario: "cloud", BlockSize: 16, RankDims: [3]int{1, 1, 1},
		BlockDims: [3]int{2, 2, 2}, Steps: 40, Workers: 2,
		Bubbles: 12, Beta: 2.25, VoidFraction: 0.082, RayleighTau: 5e-4,
		GlobalCells: 32768, WallSeconds: 5, PointsPerSec: 2.5e5,
		StepLatency: BenchSimLatency{MeanMS: 120, P50MS: 119},
		Observables: map[string]float64{
			"peak_amp": 1.22, "wall_amp": 1.0, "ke_peak": 2711,
			"min_ratio": 0.986, "final_ratio": 0.986, "collapse_frac": 0.44,
			"r0_rel_err": 0.074, "mass_drift": 4.9e-5, "non_finite": 0,
		},
	}
}

func TestCompareCloudIdenticalPasses(t *testing.T) {
	r := CompareBenchCloud(cloudBaseline(), cloudBaseline(), DefaultThresholds(1))
	if !r.OK() {
		t.Fatalf("identical records regressed: %v", r.Regressions)
	}
	if r.Checks == 0 {
		t.Fatal("no checks performed")
	}
}

func TestCompareCloudObservablesAreTight(t *testing.T) {
	fresh := cloudBaseline()
	fresh.Observables["peak_amp"] *= 1.001 // tiny for a rate, huge for physics
	r := CompareBenchCloud(cloudBaseline(), fresh, DefaultThresholds(1))
	if r.OK() {
		t.Fatal("0.1% observable shift passed the deterministic-physics gate")
	}
	if !strings.Contains(strings.Join(r.Regressions, "\n"), "peak_amp") {
		t.Fatalf("regression does not name the observable: %v", r.Regressions)
	}
}

func TestCompareCloudZeroObservableIsExact(t *testing.T) {
	fresh := cloudBaseline()
	fresh.Observables["non_finite"] = 3
	r := CompareBenchCloud(cloudBaseline(), fresh, DefaultThresholds(1))
	if r.OK() {
		t.Fatal("non-finite cells appeared without failing the gate")
	}
}

func TestCompareCloudRatesAreGenerous(t *testing.T) {
	fresh := cloudBaseline()
	fresh.PointsPerSec *= 0.6          // above the 0.4 floor
	fresh.StepLatency.MeanMS *= 2.0    // below the 2.5 ceiling
	r := CompareBenchCloud(cloudBaseline(), fresh, DefaultThresholds(1))
	if !r.OK() {
		t.Fatalf("machine noise failed the gate: %v", r.Regressions)
	}
}

func TestCompareCloudStructural(t *testing.T) {
	fresh := cloudBaseline()
	fresh.Bubbles = 11
	if r := CompareBenchCloud(cloudBaseline(), fresh, DefaultThresholds(1)); r.OK() {
		t.Fatal("bubble-count change passed")
	}
	fresh = cloudBaseline()
	fresh.Beta *= 1.01
	if r := CompareBenchCloud(cloudBaseline(), fresh, DefaultThresholds(1)); r.OK() {
		t.Fatal("beta change passed")
	}
	fresh = cloudBaseline()
	delete(fresh.Observables, "wall_amp")
	if r := CompareBenchCloud(cloudBaseline(), fresh, DefaultThresholds(1)); r.OK() {
		t.Fatal("missing observable passed")
	}
}

func TestCompareCloudConfigMismatch(t *testing.T) {
	fresh := cloudBaseline()
	fresh.Steps = 80
	r := CompareBenchCloud(cloudBaseline(), fresh, DefaultThresholds(1))
	if r.OK() {
		t.Fatal("step-count mismatch passed")
	}
	if !strings.Contains(r.Regressions[0], "configuration mismatch") {
		t.Fatalf("unexpected failure message: %v", r.Regressions)
	}
}

func TestDetectBenchKindCloud(t *testing.T) {
	data, err := json.Marshal(cloudBaseline())
	if err != nil {
		t.Fatal(err)
	}
	kind, err := DetectBenchKind(data)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "cloud" {
		t.Fatalf("kind = %q, want cloud", kind)
	}
}

func TestCompareCloudFiles(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	freshPath := filepath.Join(dir, "fresh.json")
	if err := WriteBenchCloudJSON(basePath, cloudBaseline()); err != nil {
		t.Fatal(err)
	}
	fresh := cloudBaseline()
	fresh.Observables["min_ratio"] *= 0.9
	if err := WriteBenchCloudJSON(freshPath, fresh); err != nil {
		t.Fatal(err)
	}
	r, err := CompareBenchFiles(basePath, freshPath, DefaultThresholds(1))
	if err != nil {
		t.Fatal(err)
	}
	if r.Kind != "cloud" {
		t.Fatalf("kind = %q, want cloud", r.Kind)
	}
	if r.OK() {
		t.Fatal("10% min_ratio shift passed")
	}
}

// TestCommittedCloudBaselineParses guards the checked-in baseline: it must
// detect as a cloud record and carry the full observable set the CI compare
// reruns against.
func TestCommittedCloudBaselineParses(t *testing.T) {
	data, err := os.ReadFile("../../bench/BENCH_cloud.json")
	if err != nil {
		t.Skipf("no committed baseline: %v", err)
	}
	kind, err := DetectBenchKind(data)
	if err != nil {
		t.Fatal(err)
	}
	if kind != "cloud" {
		t.Fatalf("kind = %q, want cloud", kind)
	}
	var res BenchCloudResult
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Scenario != "cloud" || res.Bubbles == 0 || res.Beta <= 0 {
		t.Fatalf("baseline incomplete: %+v", res)
	}
	for _, key := range []string{"peak_amp", "wall_amp", "ke_peak", "min_ratio",
		"final_ratio", "collapse_frac", "r0_rel_err", "mass_drift", "non_finite"} {
		if _, ok := res.Observables[key]; !ok {
			t.Errorf("baseline missing observable %s", key)
		}
	}
}
