package node

import (
	"math"
	"sync/atomic"
	"testing"

	"cubism/internal/core"
	"cubism/internal/grid"
	"cubism/internal/physics"
)

func testGrid(n, nb int) *grid.Grid {
	g := grid.New(grid.Desc{N: n, NBX: nb, NBY: nb, NBZ: nb, H: 1.0 / float64(n*nb)})
	for _, b := range g.Blocks {
		for iz := 0; iz < n; iz++ {
			for iy := 0; iy < n; iy++ {
				for ix := 0; ix < n; ix++ {
					x, y, z := g.CellCenter(b.X*n+ix, b.Y*n+iy, b.Z*n+iz)
					p := physics.Prim{
						Rho: 2 + math.Sin(2*math.Pi*x)*math.Cos(2*math.Pi*y),
						U:   0.3 * math.Sin(2*math.Pi*z),
						P:   3 + math.Cos(2*math.Pi*x),
						G:   2.5,
						Pi:  0.5,
					}
					c := p.ToCons()
					cell := b.At(ix, iy, iz)
					cell[physics.QR] = float32(c.R)
					cell[physics.QU] = float32(c.RU)
					cell[physics.QV] = float32(c.RV)
					cell[physics.QW] = float32(c.RW)
					cell[physics.QE] = float32(c.E)
					cell[physics.QG] = float32(c.G)
					cell[physics.QP] = float32(c.Pi)
				}
			}
		}
	}
	return g
}

// TestWorkerCountIndependence: the RHS result must not depend on the number
// of workers (block results are independent; scheduling is dynamic).
func TestWorkerCountIndependence(t *testing.T) {
	n := 8
	g := testGrid(n, 2)
	ref := make([][]float32, len(g.Blocks))
	for w := 1; w <= 5; w++ {
		e := New(g, grid.PeriodicBC(), w, false)
		outs := make([][]float32, len(g.Blocks))
		for i := range outs {
			outs[i] = make([]float32, n*n*n*physics.NQ)
		}
		e.ComputeRHS(g.Blocks, outs)
		if w == 1 {
			ref = outs
			continue
		}
		for bi := range outs {
			for i := range outs[bi] {
				if outs[bi][i] != ref[bi][i] {
					t.Fatalf("workers=%d block %d elem %d: %v vs %v",
						w, bi, i, outs[bi][i], ref[bi][i])
				}
			}
		}
	}
}

// TestDynamicSchedulingCoversAllBlocks: every block is processed exactly
// once regardless of contention.
func TestDynamicSchedulingCoversAllBlocks(t *testing.T) {
	g := testGrid(8, 2)
	e := New(g, grid.PeriodicBC(), 4, false)
	var count atomic.Int64
	e.parallel("test.worker", len(g.Blocks), func(w, i int) {
		count.Add(1)
	})
	if int(count.Load()) != len(g.Blocks) {
		t.Fatalf("processed %d of %d blocks", count.Load(), len(g.Blocks))
	}
}

func TestMaxCharVelMatchesDirectScan(t *testing.T) {
	g := testGrid(8, 2)
	e := New(g, grid.PeriodicBC(), 3, false)
	got := e.MaxCharVel()
	want := 0.0
	for _, b := range g.Blocks {
		if v := core.MaxCharVelScalar(b.Data); v > want {
			want = v
		}
	}
	if got != want {
		t.Fatalf("MaxCharVel = %v, want %v", got, want)
	}
}

func TestUpdateAppliesRK(t *testing.T) {
	g := testGrid(8, 1)
	per := 8 * 8 * 8 * physics.NQ
	reg := [][]float32{make([]float32, per)}
	rhs := [][]float32{make([]float32, per)}
	for i := range rhs[0] {
		rhs[0][i] = 1
	}
	before := append([]float32(nil), g.Blocks[0].Data...)
	e := New(g, grid.PeriodicBC(), 2, false)
	dt := 0.5
	b0 := 1.0 / 3.0
	e.Update(g.Blocks, reg, rhs, 0, b0, dt)
	for i := range before {
		want := before[i] + float32(b0*dt*1)
		if math.Abs(float64(g.Blocks[0].Data[i]-want)) > 1e-6 {
			t.Fatalf("elem %d: %v, want %v", i, g.Blocks[0].Data[i], want)
		}
	}
}

func TestVectorEngineMatchesScalar(t *testing.T) {
	n := 8
	g := testGrid(n, 2)
	scalar := New(g, grid.PeriodicBC(), 2, false)
	vector := New(g, grid.PeriodicBC(), 2, true)
	mk := func() [][]float32 {
		outs := make([][]float32, len(g.Blocks))
		for i := range outs {
			outs[i] = make([]float32, n*n*n*physics.NQ)
		}
		return outs
	}
	so, vo := mk(), mk()
	scalar.ComputeRHS(g.Blocks, so)
	vector.ComputeRHS(g.Blocks, vo)
	for bi := range so {
		for i := range so[bi] {
			d := math.Abs(float64(so[bi][i] - vo[bi][i]))
			scale := math.Max(1, math.Abs(float64(so[bi][i])))
			if d/scale > 1e-5 {
				t.Fatalf("block %d elem %d: scalar %v vs vector %v", bi, i, so[bi][i], vo[bi][i])
			}
		}
	}
}

func TestKernelWorkPositive(t *testing.T) {
	g := testGrid(8, 2)
	e := New(g, grid.PeriodicBC(), 1, false)
	rf, rb, uf, ub, sf, sb := e.KernelWork()
	for i, v := range []int64{rf, rb, uf, ub, sf, sb} {
		if v <= 0 {
			t.Fatalf("work[%d] = %d, want positive", i, v)
		}
	}
	if rf <= uf {
		t.Error("RHS work should dominate UP work")
	}
}
