package node

import (
	"sync"
	"sync/atomic"
	"time"

	"cubism/internal/core"
	"cubism/internal/grid"
	"cubism/internal/telemetry"
)

// pool is the engine's persistent worker pool. The workers are spawned once
// when the engine is created and live for its lifetime, draining per-block
// tasks from a single channel — the replacement for the per-region
// goroutine fork/join of the original node layer (~10 spawning barriers per
// step become zero).
//
// Scheduling stays dynamic at one-block granularity: whichever worker is
// free picks up the next queued block, exactly like the atomic-cursor
// scheme it replaces, but without paying goroutine creation on every
// region and with support for tasks that become ready mid-stage (per-face
// halo releases).
//
// Only the engine's owning goroutine submits tasks; workers never send on
// the channel, so a full queue can only be drained, never deadlocked.
type pool struct {
	tasks   chan poolTask
	workers int

	// tracer/rank are attached after construction (SetTrace) and read by
	// the workers on every task, hence atomics.
	tracer atomic.Pointer[telemetry.Tracer]
	rank   atomic.Int64

	spawned  atomic.Int64 // worker goroutines ever created (== workers)
	queued   atomic.Int64 // submitted tasks not yet picked up
	tasksRun atomic.Int64
	busyNS   atomic.Int64
	idleNS   atomic.Int64

	closeOnce sync.Once
}

// poolTask is one unit of work: item i of an in-flight StageRun.
type poolTask struct {
	run *StageRun
	i   int32
}

func newPool(workers, queueCap int) *pool {
	p := &pool{
		tasks:   make(chan poolTask, queueCap),
		workers: workers,
	}
	for w := 0; w < workers; w++ {
		p.spawned.Add(1)
		go p.worker(w)
	}
	return p
}

// worker is the persistent run loop of one pool worker. It deliberately
// references only the pool (not the engine), so an unreferenced engine can
// be garbage-collected and its finalizer can close the pool.
func (p *pool) worker(w int) {
	idleStart := time.Now()
	for {
		tr := p.tracer.Load()
		rank := int(p.rank.Load())
		idleSp := tr.StartSpan("pool.idle", rank, w+1)
		t, ok := <-p.tasks
		grabbed := time.Now()
		p.idleNS.Add(grabbed.Sub(idleStart).Nanoseconds())
		idleSp.End()
		if !ok {
			return
		}
		p.queued.Add(-1)
		sp := tr.StartSpan(t.run.name, rank, w+1)
		t.run.exec(w, int(t.i))
		sp.End()
		done := time.Now()
		p.busyNS.Add(done.Sub(grabbed).Nanoseconds())
		p.tasksRun.Add(1)
		idleStart = done
	}
}

func (p *pool) submit(t poolTask) {
	p.queued.Add(1)
	p.tasks <- t
}

// close makes the workers exit once the queue drains. Idempotent.
func (p *pool) close() {
	p.closeOnce.Do(func() { close(p.tasks) })
}

// PoolStats is a snapshot of the persistent pool's counters, exposed for
// the queue-depth/utilization gauges and the no-respawn assertions.
type PoolStats struct {
	Workers    int   // configured worker count
	Spawned    int64 // worker goroutines ever created; stays == Workers
	QueueDepth int64 // submitted tasks not yet picked up
	TasksRun   int64 // tasks executed since engine creation
	BusyNS     int64 // cumulative worker time spent running tasks
	IdleNS     int64 // cumulative worker time spent waiting for tasks
}

// PoolStats snapshots the engine pool counters.
func (e *Engine) PoolStats() PoolStats {
	p := e.pool
	return PoolStats{
		Workers:    p.workers,
		Spawned:    p.spawned.Load(),
		QueueDepth: p.queued.Load(),
		TasksRun:   p.tasksRun.Load(),
		BusyNS:     p.busyNS.Load(),
		IdleNS:     p.idleNS.Load(),
	}
}

// FusedStage describes one fused RHS+UP stage over a set of blocks. Each
// task evaluates its block's RHS and applies the low-storage RK update as
// soon as doing so cannot disturb any neighbor still assembling its lab.
type FusedStage struct {
	Blocks []*grid.Block
	// RHS[i] is block i's rhs buffer, used only when the update must be
	// deferred (a neighbor still needs the pre-update data); on the fused
	// fast path the rhs never touches memory.
	RHS [][]float32
	// Reg[i] is block i's low-storage RK register.
	Reg      [][]float32
	A, B, Dt float64
	// StartDeps[i] counts the release events (inter-rank halo faces) that
	// must arrive before task i may start; 0 means runnable immediately.
	StartDeps []int32
	// LabDeps[i] lists the ordinals of the blocks whose data task i's lab
	// assembly reads (its in-rank neighbors). Face adjacency is symmetric,
	// so this same list also enumerates the readers of block i — the tasks
	// whose lab loads gate i's in-place update.
	LabDeps [][]int32
}

// StageRun is one in-flight set of per-block tasks on the engine's pool.
type StageRun struct {
	e    *Engine
	name string
	n    int32

	// body is the per-item work of a generic parallel region; nil for
	// fused stages.
	body  func(w, i int)
	fused *FusedStage

	// startPending[i] counts outstanding release events before task i may
	// be submitted.
	startPending []atomic.Int32
	// upPending[i] counts outstanding events before block i's update may
	// run: one per reader's lab load plus one for its own RHS evaluation.
	// Whichever worker drops the count to zero applies the update.
	upPending []atomic.Int32

	completed atomic.Int32
	done      chan struct{}
}

// BeginFused schedules a fused RHS+UP stage and returns immediately; tasks
// with zero start dependencies are queued right away. The caller feeds halo
// completions through Release and blocks in Wait. name labels the per-task
// worker spans.
func (e *Engine) BeginFused(name string, f *FusedStage) *StageRun {
	n := len(f.Blocks)
	run := &StageRun{e: e, name: name, n: int32(n), fused: f, done: make(chan struct{})}
	if n == 0 {
		close(run.done)
		return run
	}
	run.startPending = make([]atomic.Int32, n)
	run.upPending = make([]atomic.Int32, n)
	for i := 0; i < n; i++ {
		run.startPending[i].Store(f.StartDeps[i])
		run.upPending[i].Store(int32(len(f.LabDeps[i])) + 1)
	}
	for i := 0; i < n; i++ {
		if f.StartDeps[i] == 0 {
			e.pool.submit(poolTask{run: run, i: int32(i)})
		}
	}
	return run
}

// Release delivers one readiness event (an installed halo face) to each
// listed task, queueing those whose dependencies are now satisfied. Must be
// called from the goroutine that called BeginFused.
func (run *StageRun) Release(tasks []int32) {
	for _, i := range tasks {
		if run.startPending[i].Add(-1) == 0 {
			run.e.pool.submit(poolTask{run: run, i: i})
		}
	}
}

// Wait blocks until every task of the stage has completed.
func (run *StageRun) Wait() { <-run.done }

// Completed returns the number of fully completed tasks (RHS and update).
func (run *StageRun) Completed() int { return int(run.completed.Load()) }

func (run *StageRun) exec(w, i int) {
	if run.fused != nil {
		run.execFused(w, i)
		return
	}
	run.body(w, i)
	run.finish()
}

func (run *StageRun) finish() {
	if run.completed.Add(1) == run.n {
		close(run.done)
	}
}

// execFused runs one fused task: assemble the lab, evaluate the RHS, and
// apply the RK update as early as the data dependencies allow. Every task
// writes only its own block (plus deferred updates whose count it drops to
// zero), so results are bitwise independent of the schedule.
func (run *StageRun) execFused(w, i int) {
	e, f := run.e, run.fused
	ws := e.scratch[w]
	ws.lab.Load(e.G, e.BC, f.Blocks[i])
	// The lab now holds private copies of every neighbor value this task
	// needs; announce that, unblocking the neighbors' in-place updates.
	for _, d := range f.LabDeps[i] {
		if run.upPending[d].Add(-1) == 0 {
			run.applyUpdate(int(d))
		}
	}
	b := f.Blocks[i]
	if run.upPending[i].Load() == 1 {
		// Every reader of this block has copied it into a lab: only our
		// own RHS evaluation is outstanding, so the update fuses with the
		// BACK stage — the rhs stays in registers instead of
		// round-tripping through memory, and the block data is updated
		// while still cache-resident.
		if e.Vector {
			ws.vec.Staged = e.Staged
			ws.vec.ComputeFused(ws.lab, e.G.H, b.Data, f.Reg[i], f.A, f.B, f.Dt)
		} else {
			ws.rhs.Staged = e.Staged
			ws.rhs.ComputeFused(ws.lab, e.G.H, b.Data, f.Reg[i], f.A, f.B, f.Dt)
		}
		run.upPending[i].Store(0)
		run.finish()
		return
	}
	// A neighbor still reads this block's pre-update data: materialize the
	// rhs and defer the update to whoever drops the count to zero.
	if e.Vector {
		ws.vec.Staged = e.Staged
		ws.vec.Compute(ws.lab, e.G.H, f.RHS[i])
	} else {
		ws.rhs.Staged = e.Staged
		ws.rhs.Compute(ws.lab, e.G.H, f.RHS[i])
	}
	if run.upPending[i].Add(-1) == 0 {
		run.applyUpdate(i)
	}
}

// applyUpdate performs the deferred RK update of block i from its stored
// rhs. The atomic count transition to zero orders it after both the rhs
// store and the last reader's lab load.
func (run *StageRun) applyUpdate(i int) {
	f := run.fused
	if run.e.Vector {
		core.UpdateQPX(f.Blocks[i].Data, f.Reg[i], f.RHS[i], f.A, f.B, f.Dt)
	} else {
		core.UpdateScalar(f.Blocks[i].Data, f.Reg[i], f.RHS[i], f.A, f.B, f.Dt)
	}
	run.finish()
}
