package node

import (
	"runtime"
	"testing"
	"time"

	"cubism/internal/core"
	"cubism/internal/grid"
	"cubism/internal/physics"
)

// TestPoolWorkerCountStable: the pool spawns its workers once at engine
// creation; a hundred stages later the goroutine count is unchanged, and
// Close retires the workers.
func TestPoolWorkerCountStable(t *testing.T) {
	base := runtime.NumGoroutine()
	const workers = 4
	g := testGrid(8, 2)
	e := New(g, grid.PeriodicBC(), workers, false)
	for s := 0; s < 100; s++ {
		e.MaxCharVel()
	}
	ps := e.PoolStats()
	if ps.Spawned != workers {
		t.Errorf("spawned %d worker goroutines, want %d (pool must not respawn)", ps.Spawned, workers)
	}
	if ps.QueueDepth != 0 {
		t.Errorf("queue depth %d after quiescence, want 0", ps.QueueDepth)
	}
	if ps.TasksRun != 100*int64(len(g.Blocks)) {
		t.Errorf("tasks run %d, want %d", ps.TasksRun, 100*len(g.Blocks))
	}
	// Some slack for runtime-internal goroutines, but nothing proportional
	// to the number of stages.
	if got := runtime.NumGoroutine(); got > base+workers+2 {
		t.Errorf("goroutine count grew to %d (baseline %d + %d workers)", got, base, workers)
	}
	e.Close()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base+2 {
		if time.Now().After(deadline) {
			t.Fatalf("workers did not exit after Close: %d goroutines, baseline %d",
				runtime.NumGoroutine(), base)
		}
		time.Sleep(time.Millisecond)
	}
}

// labDepsOf derives the in-grid face-adjacency dependency lists for a
// single-rank grid with non-periodic BC (out-of-range ghosts come from the
// boundary condition, adding no dependency).
func labDepsOf(g *grid.Grid) (start []int32, deps [][]int32) {
	ord := make(map[*grid.Block]int32, len(g.Blocks))
	for i, b := range g.Blocks {
		ord[b] = int32(i)
	}
	start = make([]int32, len(g.Blocks))
	deps = make([][]int32, len(g.Blocks))
	lim := [3]int{g.NBX, g.NBY, g.NBZ}
	for i, b := range g.Blocks {
		for f := grid.XLo; f <= grid.ZHi; f++ {
			a := f.Axis()
			dir := -1
			if f.IsHigh() {
				dir = 1
			}
			nc := [3]int{b.X, b.Y, b.Z}
			nc[a] += dir
			if nc[a] >= 0 && nc[a] < lim[a] {
				deps[i] = append(deps[i], ord[g.BlockAt(nc[0], nc[1], nc[2])])
			}
		}
	}
	return start, deps
}

// TestFusedMatchesStaged: the fused RHS+UP stage must be bitwise identical
// to the staged ComputeRHS + Update pair, for both kernel variants, across
// RK stages with non-zero register coefficients.
func TestFusedMatchesStaged(t *testing.T) {
	for _, vector := range []bool{false, true} {
		name := "Scalar"
		if vector {
			name = "Vector"
		}
		t.Run(name, func(t *testing.T) {
			n := 8
			bc := grid.DefaultBC()
			g1 := testGrid(n, 2)
			g2 := testGrid(n, 2)
			e1 := New(g1, bc, 3, vector)
			e2 := New(g2, bc, 3, vector)
			defer e1.Close()
			defer e2.Close()
			per := n * n * n * physics.NQ
			mk := func(k int) [][]float32 {
				out := make([][]float32, k)
				for i := range out {
					out[i] = make([]float32, per)
				}
				return out
			}
			reg1, rhs1 := mk(len(g1.Blocks)), mk(len(g1.Blocks))
			reg2, rhs2 := mk(len(g2.Blocks)), mk(len(g2.Blocks))
			start, deps := labDepsOf(g2)
			dt := 1e-4
			for s := 0; s < 3; s++ {
				e1.ComputeRHS(g1.Blocks, rhs1)
				e1.Update(g1.Blocks, reg1, rhs1, core.RK3A[s], core.RK3B[s], dt)
				run := e2.BeginFused("RHSUP.worker", &FusedStage{
					Blocks: g2.Blocks, RHS: rhs2, Reg: reg2,
					A: core.RK3A[s], B: core.RK3B[s], Dt: dt,
					StartDeps: start, LabDeps: deps,
				})
				run.Wait()
				if got := run.Completed(); got != len(g2.Blocks) {
					t.Fatalf("stage %d completed %d of %d tasks", s, got, len(g2.Blocks))
				}
			}
			for bi := range g1.Blocks {
				for i := range g1.Blocks[bi].Data {
					a, b := g1.Blocks[bi].Data[i], g2.Blocks[bi].Data[i]
					if a != b {
						t.Fatalf("block %d word %d: staged %v != fused %v (bitwise)", bi, i, a, b)
					}
				}
				for i := range reg1[bi] {
					if reg1[bi][i] != reg2[bi][i] {
						t.Fatalf("block %d reg word %d: staged %v != fused %v", bi, i, reg1[bi][i], reg2[bi][i])
					}
				}
			}
		})
	}
}

// TestPerFaceReadiness: a task gated on a halo face must not run before
// Release delivers that face, and its neighbors' deferred updates must wait
// for its lab load.
func TestPerFaceReadiness(t *testing.T) {
	n := 8
	g := grid.New(grid.Desc{N: n, NBX: 4, NBY: 1, NBZ: 1, H: 1.0 / float64(4*n)})
	for _, b := range g.Blocks {
		for i := range b.Data {
			b.Data[i] = 1 // uniform valid state: Rho=1, E=1, G=1, Pi=1
		}
	}
	e := New(g, grid.DefaultBC(), 2, false)
	defer e.Close()
	per := n * n * n * physics.NQ
	reg := make([][]float32, 4)
	rhs := make([][]float32, 4)
	for i := range reg {
		reg[i] = make([]float32, per)
		rhs[i] = make([]float32, per)
	}
	// Chain 0-1-2-3 along x; block 3 is artificially gated on one halo face.
	start := []int32{0, 0, 0, 1}
	deps := [][]int32{{1}, {0, 2}, {1, 3}, {2}}
	run := e.BeginFused("RHSUP.worker", &FusedStage{
		Blocks: g.Blocks, RHS: rhs, Reg: reg,
		A: 0, B: 1.0 / 3.0, Dt: 1e-4,
		StartDeps: start, LabDeps: deps,
	})
	// Blocks 0 and 1 can fully complete; block 2's update is deferred on
	// block 3's lab load; block 3 is not released. Poll to 2 completions.
	deadline := time.Now().Add(5 * time.Second)
	for run.Completed() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("only %d tasks completed before release", run.Completed())
		}
		time.Sleep(time.Millisecond)
	}
	time.Sleep(50 * time.Millisecond)
	if got := run.Completed(); got != 2 {
		t.Fatalf("completed %d tasks while face held, want exactly 2", got)
	}
	run.Release([]int32{3})
	run.Wait()
	if got := run.Completed(); got != 4 {
		t.Fatalf("completed %d tasks after release, want 4", got)
	}
}
