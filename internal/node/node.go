// Package node implements the paper's node layer (§6): it coordinates the
// work within one rank, assigning blocks to threads with dynamic scheduling
// at one-block granularity and providing each worker with dedicated scratch
// buffers (Lab, ring slices, RHS workspace).
//
// Threads are goroutines pinned 1:1 to workers; the work-stealing-free
// dynamic queue is an atomic cursor over the block list, the direct analog
// of OpenMP dynamic scheduling with chunk size one.
package node

import (
	"runtime"
	"sync"
	"sync/atomic"

	"cubism/internal/core"
	"cubism/internal/grid"
	"cubism/internal/physics"
	"cubism/internal/telemetry"
)

// Engine executes the compute kernels over the blocks of one rank-local
// grid.
type Engine struct {
	G  *grid.Grid
	BC grid.BC
	// Vector selects the QPX (4-lane vector) kernel variants.
	Vector bool
	// Staged selects the non-fused WENO→HLLE baseline (Table 9).
	Staged bool

	workers int
	scratch []*workspace

	tracer *telemetry.Tracer
	rank   int
}

// workspace is the per-worker dedicated buffer set.
type workspace struct {
	lab *grid.Lab
	rhs *core.RHS
	vec *core.RHSVec
}

// New creates an engine with the given number of workers (0 means
// runtime.NumCPU()).
func New(g *grid.Grid, bc grid.BC, workers int, vector bool) *Engine {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	e := &Engine{G: g, BC: bc, Vector: vector, workers: workers}
	e.scratch = make([]*workspace, workers)
	for i := range e.scratch {
		ws := &workspace{lab: grid.NewLab(g.N)}
		if vector {
			ws.vec = core.NewRHSVec(g.N)
		} else {
			ws.rhs = core.NewRHS(g.N)
		}
		e.scratch[i] = ws
	}
	return e
}

// Workers returns the worker count.
func (e *Engine) Workers() int { return e.workers }

// SetTrace attaches a span tracer (may be nil) and this engine's rank id;
// each parallel region then records one span per participating worker on
// the worker's own track.
func (e *Engine) SetTrace(t *telemetry.Tracer, rank int) {
	e.tracer = t
	e.rank = rank
}

// parallel runs body(worker, blockOrdinal) for every ordinal in [0, n),
// distributing ordinals dynamically across the workers. region names the
// spans recorded on each worker's trace track.
func (e *Engine) parallel(region string, n int, body func(w, i int)) {
	if n == 0 {
		return
	}
	workers := e.workers
	if workers > n {
		workers = n
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			sp := e.tracer.StartSpan(region, e.rank, w+1)
			defer sp.End()
			for {
				i := int(cursor.Add(1)) - 1
				if i >= n {
					return
				}
				body(w, i)
			}
		}(w)
	}
	wg.Wait()
}

// ComputeRHS evaluates the right-hand side of the listed blocks into the
// matching out buffers (block AoS layout). Each worker loads block data and
// ghosts into its dedicated lab before invoking the core kernel.
func (e *Engine) ComputeRHS(blocks []*grid.Block, out [][]float32) {
	e.parallel("RHS.worker", len(blocks), func(w, i int) {
		ws := e.scratch[w]
		ws.lab.Load(e.G, e.BC, blocks[i])
		if e.Vector {
			ws.vec.Staged = e.Staged
			ws.vec.Compute(ws.lab, e.G.H, out[i])
		} else {
			ws.rhs.Staged = e.Staged
			ws.rhs.Compute(ws.lab, e.G.H, out[i])
		}
	})
}

// Update applies one UP stage to every block: reg ← a·reg + dt·rhs,
// u ← u + b·reg.
func (e *Engine) Update(blocks []*grid.Block, reg, rhs [][]float32, a, b, dt float64) {
	vector := e.Vector
	e.parallel("UP.worker", len(blocks), func(w, i int) {
		if vector {
			core.UpdateQPX(blocks[i].Data, reg[i], rhs[i], a, b, dt)
		} else {
			core.UpdateScalar(blocks[i].Data, reg[i], rhs[i], a, b, dt)
		}
	})
}

// MaxCharVel returns the rank-local maximum characteristic velocity (the
// SOS kernel) over all blocks. The per-block maxima are combined in block
// order so the result is deterministic.
func (e *Engine) MaxCharVel() float64 {
	blocks := e.G.Blocks
	partial := make([]float64, len(blocks))
	vector := e.Vector
	e.parallel("SOS.worker", len(blocks), func(w, i int) {
		if vector {
			partial[i] = core.MaxCharVelQPX(blocks[i].Data)
		} else {
			partial[i] = core.MaxCharVelScalar(blocks[i].Data)
		}
	})
	maxV := 0.0
	for _, v := range partial {
		if v > maxV {
			maxV = v
		}
	}
	return maxV
}

// KernelWork reports the per-step floating point work and compulsory
// traffic of the engine's grid, used by the perf/roofline accounting.
func (e *Engine) KernelWork() (rhsFlops, rhsBytes, upFlops, upBytes, sosFlops, sosBytes int64) {
	cells := int64(e.G.Cells())
	values := cells * physics.NQ
	rhsFlops = cells * core.RHSFlopsPerCell(e.G.N)
	rhsBytes = cells * core.RHSBytesPerCell(e.G.N)
	upFlops = values * core.UpdateFlopsPerValue
	upBytes = values * core.UpdateBytesPerValue
	sosFlops = cells * core.SOSFlopsPerCell
	sosBytes = cells * core.SOSBytesPerCell
	return
}
