// Package node implements the paper's node layer (§6): it coordinates the
// work within one rank, assigning blocks to threads with dynamic scheduling
// at one-block granularity and providing each worker with dedicated scratch
// buffers (Lab, ring slices, RHS workspace).
//
// Threads are goroutines pinned 1:1 to workers in a persistent pool created
// once per engine; per-block tasks are drained from a channel, the direct
// analog of OpenMP dynamic scheduling with chunk size one but without the
// per-region fork/join. Stages may run bulk-synchronous (ComputeRHS +
// Update) or as a dependency-driven fused RHS+UP pipeline (BeginFused).
package node

import (
	"runtime"

	"cubism/internal/core"
	"cubism/internal/grid"
	"cubism/internal/physics"
	"cubism/internal/telemetry"
)

// Engine executes the compute kernels over the blocks of one rank-local
// grid.
type Engine struct {
	G  *grid.Grid
	BC grid.BC
	// Vector selects the QPX (4-lane vector) kernel variants.
	Vector bool
	// Staged selects the non-fused WENO→HLLE baseline (Table 9).
	Staged bool

	workers int
	scratch []*workspace
	pool    *pool
	// partial holds the per-block maxima of MaxCharVel, reused across
	// steps so the DT kernel allocates nothing in steady state.
	partial []float64
}

// workspace is the per-worker dedicated buffer set.
type workspace struct {
	lab *grid.Lab
	rhs *core.RHS
	vec *core.RHSVec
}

// New creates an engine with the given number of workers (0 means
// runtime.NumCPU()). The worker goroutines are spawned here, once, and live
// for the engine's lifetime; Close (or garbage collection of the engine)
// retires them.
func New(g *grid.Grid, bc grid.BC, workers int, vector bool) *Engine {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	e := &Engine{G: g, BC: bc, Vector: vector, workers: workers}
	e.scratch = make([]*workspace, workers)
	for i := range e.scratch {
		ws := &workspace{lab: grid.NewLab(g.N)}
		if vector {
			ws.vec = core.NewRHSVec(g.N)
		} else {
			ws.rhs = core.NewRHS(g.N)
		}
		e.scratch[i] = ws
	}
	e.partial = make([]float64, len(g.Blocks))
	// Queue capacity covers a full grid of tasks so a stage submission
	// rarely blocks; correctness does not depend on it (workers drain).
	e.pool = newPool(workers, len(g.Blocks)+workers+1)
	// The workers reference only the pool, so an engine dropped without an
	// explicit Close becomes collectable and the finalizer retires them.
	runtime.SetFinalizer(e, func(e *Engine) { e.pool.close() })
	return e
}

// Workers returns the worker count.
func (e *Engine) Workers() int { return e.workers }

// SetGrid swaps the engine onto a new rank-local grid with the same block
// size — the block-migration path of a layout rebalance. The persistent
// worker pool and the per-worker scratch are reused (workers are never
// respawned across a migration; the spawn-once invariant holds for the
// process lifetime); only the per-block DT scratch is resized.
func (e *Engine) SetGrid(g *grid.Grid) {
	if g.N != e.G.N {
		panic("node: SetGrid requires the same block size")
	}
	e.G = g
	e.partial = make([]float64, len(g.Blocks))
}

// Close retires the pool workers. The engine must not be used afterwards.
// Optional: unclosed engines are cleaned up by a GC finalizer.
func (e *Engine) Close() { e.pool.close() }

// SetTrace attaches a span tracer (may be nil) and this engine's rank id;
// each task then records one span on the executing worker's track, plus
// pool.idle spans covering the time workers spend waiting for work.
func (e *Engine) SetTrace(t *telemetry.Tracer, rank int) {
	e.pool.tracer.Store(t)
	e.pool.rank.Store(int64(rank))
}

// Parallel runs body(worker, item) for every item in [0, n), distributing
// items dynamically across the persistent pool workers — the generic
// parallel-for other layers (the dump ENC stage) schedule onto the same
// threads as the solver kernels. region names the spans recorded on each
// worker's trace track.
func (e *Engine) Parallel(region string, n int, body func(w, i int)) {
	e.parallel(region, n, body)
}

// parallel runs body(worker, blockOrdinal) for every ordinal in [0, n),
// distributing ordinals dynamically across the pool workers. region names
// the spans recorded on each worker's trace track.
func (e *Engine) parallel(region string, n int, body func(w, i int)) {
	if n == 0 {
		return
	}
	run := &StageRun{e: e, name: region, n: int32(n), body: body, done: make(chan struct{})}
	for i := int32(0); i < int32(n); i++ {
		e.pool.submit(poolTask{run: run, i: i})
	}
	<-run.done
}

// ComputeRHS evaluates the right-hand side of the listed blocks into the
// matching out buffers (block AoS layout). Each worker loads block data and
// ghosts into its dedicated lab before invoking the core kernel.
func (e *Engine) ComputeRHS(blocks []*grid.Block, out [][]float32) {
	e.parallel("RHS.worker", len(blocks), func(w, i int) {
		ws := e.scratch[w]
		ws.lab.Load(e.G, e.BC, blocks[i])
		if e.Vector {
			ws.vec.Staged = e.Staged
			ws.vec.Compute(ws.lab, e.G.H, out[i])
		} else {
			ws.rhs.Staged = e.Staged
			ws.rhs.Compute(ws.lab, e.G.H, out[i])
		}
	})
}

// Update applies one UP stage to every block: reg ← a·reg + dt·rhs,
// u ← u + b·reg.
func (e *Engine) Update(blocks []*grid.Block, reg, rhs [][]float32, a, b, dt float64) {
	vector := e.Vector
	e.parallel("UP.worker", len(blocks), func(w, i int) {
		if vector {
			core.UpdateQPX(blocks[i].Data, reg[i], rhs[i], a, b, dt)
		} else {
			core.UpdateScalar(blocks[i].Data, reg[i], rhs[i], a, b, dt)
		}
	})
}

// MaxCharVel returns the rank-local maximum characteristic velocity (the
// SOS kernel) over all blocks. The per-block maxima are combined in block
// order so the result is deterministic.
func (e *Engine) MaxCharVel() float64 {
	blocks := e.G.Blocks
	partial := e.partial
	vector := e.Vector
	e.parallel("SOS.worker", len(blocks), func(w, i int) {
		if vector {
			partial[i] = core.MaxCharVelQPX(blocks[i].Data)
		} else {
			partial[i] = core.MaxCharVelScalar(blocks[i].Data)
		}
	})
	maxV := 0.0
	for _, v := range partial {
		if v > maxV {
			maxV = v
		}
	}
	return maxV
}

// KernelWork reports the per-step floating point work and compulsory
// traffic of the engine's grid, used by the perf/roofline accounting.
func (e *Engine) KernelWork() (rhsFlops, rhsBytes, upFlops, upBytes, sosFlops, sosBytes int64) {
	cells := int64(e.G.Cells())
	values := cells * physics.NQ
	rhsFlops = cells * core.RHSFlopsPerCell(e.G.N)
	rhsBytes = cells * core.RHSBytesPerCell(e.G.N)
	upFlops = values * core.UpdateFlopsPerValue
	upBytes = values * core.UpdateBytesPerValue
	sosFlops = cells * core.SOSFlopsPerCell
	sosBytes = cells * core.SOSBytesPerCell
	return
}
