package checkpoint_test

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"testing"

	"cubism/internal/checkpoint"
	"cubism/internal/cluster"
	"cubism/internal/grid"
	"cubism/internal/mpi"
	"cubism/internal/physics"
)

func sodInit(x, y, z float64) physics.Prim {
	g := 1 / (1.4 - 1)
	if x < 0.5 {
		return physics.Prim{Rho: 1, P: 1, G: g, Pi: 0}
	}
	return physics.Prim{Rho: 0.125, P: 0.1, G: g, Pi: 0}
}

func cfg() cluster.Config {
	return cluster.Config{
		RankDims:  [3]int{2, 1, 1},
		BlockDims: [3]int{1, 1, 1},
		BlockSize: 8,
		Extent:    1,
		Workers:   1,
		CFL:       0.3,
		Init:      sodInit,
	}
}

// collect snapshots every cell of a rank's grid.
func collect(r *cluster.Rank) []float32 {
	var out []float32
	for _, b := range r.G.Blocks {
		out = append(out, b.Data...)
	}
	return out
}

// TestRestartBitExact: (3 steps, checkpoint, 3 steps) must equal
// (restore checkpoint, 3 steps) bit for bit — the time step derives from
// the state, so the trajectories coincide exactly.
func TestRestartBitExact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckp")

	final := make([][]float32, 2)
	world := mpi.NewWorld(2)
	world.Run(func(comm *mpi.Comm) {
		r := cluster.NewRank(comm, cfg())
		for i := 0; i < 3; i++ {
			r.Advance()
		}
		if err := r.SaveCheckpoint(path); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 3; i++ {
			r.Advance()
		}
		final[comm.Rank()] = collect(r)
	})

	world2 := mpi.NewWorld(2)
	world2.Run(func(comm *mpi.Comm) {
		r := cluster.NewRank(comm, cfg())
		if err := r.RestoreCheckpoint(path); err != nil {
			t.Error(err)
			return
		}
		if r.Step != 3 {
			t.Errorf("restored step = %d, want 3", r.Step)
		}
		if r.Time <= 0 {
			t.Error("restored time not positive")
		}
		for i := 0; i < 3; i++ {
			r.Advance()
		}
		got := collect(r)
		want := final[comm.Rank()]
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("rank %d elem %d: restart %v vs continuous %v", comm.Rank(), i, got[i], want[i])
				return
			}
		}
	})
}

func TestHeaderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "h.ckp")
	world := mpi.NewWorld(1)
	world.Run(func(comm *mpi.Comm) {
		g := grid.New(grid.Desc{N: 8, NBX: 1, NBY: 1, NBZ: 1, H: 0.125})
		if err := checkpoint.Write(comm, path, g, [3]int{1, 1, 1}, 17, 3.5e-4); err != nil {
			t.Error(err)
		}
	})
	hdr, err := checkpoint.ReadHeader(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Step != 17 || hdr.Time != 3.5e-4 || hdr.BlockSize != 8 {
		t.Errorf("header %+v", hdr)
	}
}

// TestRestoreIntoDifferentLayout: a checkpoint written by a cartesian
// 2-rank run must restore into a Hilbert-partitioned 4-rank run — different
// layout AND different rank count — and continue bitwise identically to the
// uninterrupted writer. The checkpoint is addressed by global block id, so
// each reading rank pulls its blocks out of whichever writer payloads hold
// them.
func TestRestoreIntoDifferentLayout(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "relayout.ckp")
	writerCfg := cluster.Config{
		RankDims:  [3]int{2, 1, 1},
		BlockDims: [3]int{2, 2, 2}, // global box 4x2x2
		BlockSize: 8,
		Extent:    1,
		Workers:   1,
		CFL:       0.3,
		Init:      sodInit,
	}
	readerCfg := writerCfg
	readerCfg.RankDims = [3]int{4, 1, 1}
	readerCfg.BlockDims = [3]int{1, 2, 2} // same global box
	readerCfg.Layout = "hilbert"

	// byID flattens a rank's blocks into canonical-id-keyed copies.
	byID := func(r *cluster.Rank) map[int64][]float32 {
		out := make(map[int64][]float32, len(r.G.Blocks))
		for _, b := range r.G.Blocks {
			id := (int64(b.Z)*int64(r.G.NBY)+int64(b.Y))*int64(r.G.NBX) + int64(b.X)
			out[id] = append([]float32(nil), b.Data...)
		}
		return out
	}
	merge := func(dst map[int64][]float32, src map[int64][]float32) {
		for id, blk := range src {
			dst[id] = blk
		}
	}

	want := make(map[int64][]float32)
	parts := make([]map[int64][]float32, 2)
	world := mpi.NewWorld(2)
	world.Run(func(comm *mpi.Comm) {
		r := cluster.NewRank(comm, writerCfg)
		defer r.Close()
		for i := 0; i < 3; i++ {
			r.Advance()
		}
		if err := r.SaveCheckpoint(path); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 3; i++ {
			r.Advance()
		}
		parts[comm.Rank()] = byID(r)
	})
	for _, p := range parts {
		merge(want, p)
	}

	got := make(map[int64][]float32)
	gotParts := make([]map[int64][]float32, 4)
	world2 := mpi.NewWorld(4)
	world2.Run(func(comm *mpi.Comm) {
		r := cluster.NewRank(comm, readerCfg)
		defer r.Close()
		if err := r.RestoreCheckpoint(path); err != nil {
			t.Error(err)
			return
		}
		if r.Step != 3 {
			t.Errorf("restored step = %d, want 3", r.Step)
		}
		for i := 0; i < 3; i++ {
			r.Advance()
		}
		gotParts[comm.Rank()] = byID(r)
	})
	for _, p := range gotParts {
		merge(got, p)
	}

	if len(got) != len(want) || len(want) != 16 {
		t.Fatalf("block coverage: got %d, want %d (16)", len(got), len(want))
	}
	for id, w := range want {
		g, ok := got[id]
		if !ok {
			t.Fatalf("block %d missing after re-layout restore", id)
		}
		for i := range w {
			if g[i] != w[i] {
				t.Fatalf("block %d elem %d: re-layout %v vs continuous %v", id, i, g[i], w[i])
			}
		}
	}
}

func TestRestoreGeometryMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.ckp")
	world := mpi.NewWorld(1)
	world.Run(func(comm *mpi.Comm) {
		g := grid.New(grid.Desc{N: 8, NBX: 1, NBY: 1, NBZ: 1, H: 0.125})
		if err := checkpoint.Write(comm, path, g, [3]int{1, 1, 1}, 0, 0); err != nil {
			t.Error(err)
		}
	})
	other := grid.New(grid.Desc{N: 8, NBX: 2, NBY: 1, NBZ: 1, H: 0.125})
	if _, _, err := checkpoint.Restore(path, 0, other); err == nil {
		t.Error("expected geometry mismatch error")
	}
}

// TestRestoreV1File: version-1 checkpoints (no block-id tables; implied
// cartesian decomposition) must still restore. The file is crafted by hand
// in the historical format: blocks in per-rank SFC order.
func TestRestoreV1File(t *testing.T) {
	const n = 8
	dir := t.TempDir()
	path := filepath.Join(dir, "v1.ckp")

	// One writer rank with 2x1x1 blocks of edge 4; ForBox(2,1,1) enumerates
	// row-major: (0,0,0), (1,0,0).
	per := n * n * n * physics.NQ
	blockVal := func(bx int, i int) float32 { return float32(bx*1000 + i) }
	var raw bytes.Buffer
	zw := zlib.NewWriter(&raw)
	var word [4]byte
	for bx := 0; bx < 2; bx++ {
		for i := 0; i < per; i++ {
			binary.LittleEndian.PutUint32(word[:], math.Float32bits(blockVal(bx, i)))
			zw.Write(word[:])
		}
	}
	zw.Close()
	payload := raw.Bytes()

	hdr := map[string]any{
		"block_size": n,
		"rank_dims":  [3]int{1, 1, 1},
		"block_dims": [3]int{2, 1, 1},
		"step":       7,
		"time":       0.5,
		"offsets":    []int64{0}, // fixed up below
		"sizes":      []int64{int64(len(payload))},
	}
	// The offset depends on the header length, which depends on the offset
	// digits: iterate the fixup until the encoding is stable.
	var body []byte
	for {
		b, err := json.Marshal(hdr)
		if err != nil {
			t.Fatal(err)
		}
		base := int64(len(checkpoint.Magic)) + 4 + int64(len(b))
		if hdr["offsets"].([]int64)[0] == base {
			body = b
			break
		}
		hdr["offsets"] = []int64{base}
	}
	var file bytes.Buffer
	file.WriteString(checkpoint.Magic)
	var lenBuf [4]byte
	binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(body)))
	file.Write(lenBuf[:])
	file.Write(body)
	file.Write(payload)
	if err := os.WriteFile(path, file.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	g := grid.New(grid.Desc{N: n, NBX: 2, NBY: 1, NBZ: 1, H: 0.125})
	step, simTime, err := checkpoint.Restore(path, 0, g)
	if err != nil {
		t.Fatal(err)
	}
	if step != 7 || simTime != 0.5 {
		t.Errorf("restored (step, time) = (%d, %v), want (7, 0.5)", step, simTime)
	}
	for _, b := range g.Blocks {
		for i, v := range b.Data {
			if want := blockVal(b.X, i); v != want {
				t.Fatalf("block x=%d elem %d: %v, want %v", b.X, i, v, want)
			}
		}
	}
}
