package checkpoint_test

import (
	"path/filepath"
	"testing"

	"cubism/internal/checkpoint"
	"cubism/internal/cluster"
	"cubism/internal/grid"
	"cubism/internal/mpi"
	"cubism/internal/physics"
)

func sodInit(x, y, z float64) physics.Prim {
	g := 1 / (1.4 - 1)
	if x < 0.5 {
		return physics.Prim{Rho: 1, P: 1, G: g, Pi: 0}
	}
	return physics.Prim{Rho: 0.125, P: 0.1, G: g, Pi: 0}
}

func cfg() cluster.Config {
	return cluster.Config{
		RankDims:  [3]int{2, 1, 1},
		BlockDims: [3]int{1, 1, 1},
		BlockSize: 8,
		Extent:    1,
		Workers:   1,
		CFL:       0.3,
		Init:      sodInit,
	}
}

// collect snapshots every cell of a rank's grid.
func collect(r *cluster.Rank) []float32 {
	var out []float32
	for _, b := range r.G.Blocks {
		out = append(out, b.Data...)
	}
	return out
}

// TestRestartBitExact: (3 steps, checkpoint, 3 steps) must equal
// (restore checkpoint, 3 steps) bit for bit — the time step derives from
// the state, so the trajectories coincide exactly.
func TestRestartBitExact(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.ckp")

	final := make([][]float32, 2)
	world := mpi.NewWorld(2)
	world.Run(func(comm *mpi.Comm) {
		r := cluster.NewRank(comm, cfg())
		for i := 0; i < 3; i++ {
			r.Advance()
		}
		if err := r.SaveCheckpoint(path); err != nil {
			t.Error(err)
			return
		}
		for i := 0; i < 3; i++ {
			r.Advance()
		}
		final[comm.Rank()] = collect(r)
	})

	world2 := mpi.NewWorld(2)
	world2.Run(func(comm *mpi.Comm) {
		r := cluster.NewRank(comm, cfg())
		if err := r.RestoreCheckpoint(path); err != nil {
			t.Error(err)
			return
		}
		if r.Step != 3 {
			t.Errorf("restored step = %d, want 3", r.Step)
		}
		if r.Time <= 0 {
			t.Error("restored time not positive")
		}
		for i := 0; i < 3; i++ {
			r.Advance()
		}
		got := collect(r)
		want := final[comm.Rank()]
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("rank %d elem %d: restart %v vs continuous %v", comm.Rank(), i, got[i], want[i])
				return
			}
		}
	})
}

func TestHeaderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "h.ckp")
	world := mpi.NewWorld(1)
	world.Run(func(comm *mpi.Comm) {
		g := grid.New(grid.Desc{N: 8, NBX: 1, NBY: 1, NBZ: 1, H: 0.125})
		if err := checkpoint.Write(comm, path, g, [3]int{1, 1, 1}, 17, 3.5e-4); err != nil {
			t.Error(err)
		}
	})
	hdr, err := checkpoint.ReadHeader(path)
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Step != 17 || hdr.Time != 3.5e-4 || hdr.BlockSize != 8 {
		t.Errorf("header %+v", hdr)
	}
}

func TestRestoreGeometryMismatch(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "g.ckp")
	world := mpi.NewWorld(1)
	world.Run(func(comm *mpi.Comm) {
		g := grid.New(grid.Desc{N: 8, NBX: 1, NBY: 1, NBZ: 1, H: 0.125})
		if err := checkpoint.Write(comm, path, g, [3]int{1, 1, 1}, 0, 0); err != nil {
			t.Error(err)
		}
	})
	other := grid.New(grid.Desc{N: 8, NBX: 2, NBY: 1, NBZ: 1, H: 0.125})
	if _, _, err := checkpoint.Restore(path, 0, other); err == nil {
		t.Error("expected geometry mismatch error")
	}
}
