// Package checkpoint provides lossless save/restore of the full simulation
// state. The paper avoids full-state serialization at production scale
// ("the serialization to file of the simulation state would involve I/O
// operations on Petabytes of data") by dumping only wavelet-compressed p
// and Γ; a reusable library nevertheless needs restartability, so this
// package writes the complete conserved state (all seven quantities, bit
// exact) through the same collective shared-file path as the dumps, with a
// DEFLATE pass to keep the footprint reasonable.
package checkpoint

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"cubism/internal/grid"
	"cubism/internal/mpi"
)

// Magic identifies checkpoint files.
const Magic = "MPCFCkp1"

// Header describes a checkpoint.
type Header struct {
	BlockSize int     `json:"block_size"`
	RankDims  [3]int  `json:"rank_dims"`
	BlockDims [3]int  `json:"block_dims"`
	Step      int     `json:"step"`
	Time      float64 `json:"time"`
	// Offsets/Sizes locate each rank's zlib-compressed payload.
	Offsets []int64 `json:"offsets"`
	Sizes   []int64 `json:"sizes"`
}

// Write saves the rank-local grid state collectively into path. All ranks
// must call it with consistent metadata.
func Write(comm *mpi.Comm, path string, g *grid.Grid, rankDims [3]int, step int, time float64) error {
	// Serialize this rank's blocks (SFC order) bit-exactly, then deflate.
	var raw bytes.Buffer
	zw := zlib.NewWriter(&raw)
	var word [4]byte
	for _, b := range g.Blocks {
		for _, v := range b.Data {
			binary.LittleEndian.PutUint32(word[:], math.Float32bits(v))
			if _, err := zw.Write(word[:]); err != nil {
				return err
			}
		}
	}
	if err := zw.Close(); err != nil {
		return err
	}
	payload := raw.Bytes()
	mySize := int64(len(payload))
	prefix := comm.Exscan(mySize)
	sizes := comm.Gather(float64(mySize))

	var headerBytes []byte
	if comm.Rank() == 0 {
		hdr := Header{
			BlockSize: g.N,
			RankDims:  rankDims,
			BlockDims: [3]int{g.NBX, g.NBY, g.NBZ},
			Step:      step,
			Time:      time,
			Offsets:   make([]int64, comm.Size()),
			Sizes:     make([]int64, comm.Size()),
		}
		probe, err := json.Marshal(hdr)
		if err != nil {
			return err
		}
		headerLen := len(probe) + 32*comm.Size()
		base := int64(len(Magic)) + 4 + int64(headerLen)
		var off int64
		for r := range hdr.Offsets {
			hdr.Sizes[r] = int64(sizes[r])
			hdr.Offsets[r] = base + off
			off += hdr.Sizes[r]
		}
		body, err := json.Marshal(hdr)
		if err != nil {
			return err
		}
		if len(body) > headerLen {
			return fmt.Errorf("checkpoint: header estimate too small")
		}
		headerBytes = make([]byte, headerLen)
		copy(headerBytes, body)
		for i := len(body); i < headerLen; i++ {
			headerBytes[i] = ' '
		}
	}
	var myBase float64
	if comm.Rank() == 0 {
		myBase = float64(int64(len(Magic)) + 4 + int64(len(headerBytes)))
	}
	base := int64(comm.Allreduce(myBase, mpi.MaxOp))

	f, err := mpi.CreateShared(comm, path)
	if err != nil {
		return err
	}
	if comm.Rank() == 0 {
		var pre []byte
		pre = append(pre, Magic...)
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(headerBytes)))
		pre = append(pre, lenBuf[:]...)
		pre = append(pre, headerBytes...)
		if _, err := f.WriteAt(pre, 0); err != nil {
			return err
		}
	}
	if len(payload) > 0 {
		if _, err := f.WriteAt(payload, base+prefix); err != nil {
			return err
		}
	}
	comm.Barrier()
	return f.Close()
}

// ReadHeader parses the checkpoint metadata.
func ReadHeader(path string) (Header, error) {
	var hdr Header
	data, err := os.ReadFile(path)
	if err != nil {
		return hdr, err
	}
	if len(data) < len(Magic)+4 || string(data[:len(Magic)]) != Magic {
		return hdr, fmt.Errorf("checkpoint: %s: bad magic", path)
	}
	hlen := int(binary.LittleEndian.Uint32(data[len(Magic):]))
	hstart := len(Magic) + 4
	if hstart+hlen > len(data) {
		return hdr, fmt.Errorf("checkpoint: %s: truncated header", path)
	}
	body := bytes.TrimRight(data[hstart:hstart+hlen], " ")
	if err := json.Unmarshal(body, &hdr); err != nil {
		return hdr, fmt.Errorf("checkpoint: %s: %v", path, err)
	}
	return hdr, nil
}

// Restore loads rank `rank`'s state from the checkpoint into g; the grid
// geometry must match the header.
func Restore(path string, rank int, g *grid.Grid) (step int, simTime float64, err error) {
	hdr, err := ReadHeader(path)
	if err != nil {
		return 0, 0, err
	}
	if hdr.BlockSize != g.N || hdr.BlockDims != [3]int{g.NBX, g.NBY, g.NBZ} {
		return 0, 0, fmt.Errorf("checkpoint: geometry mismatch: file %dx%v, grid %dx%v",
			hdr.BlockSize, hdr.BlockDims, g.N, [3]int{g.NBX, g.NBY, g.NBZ})
	}
	if rank < 0 || rank >= len(hdr.Offsets) {
		return 0, 0, fmt.Errorf("checkpoint: rank %d out of range", rank)
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	payload := make([]byte, hdr.Sizes[rank])
	if _, err := f.ReadAt(payload, hdr.Offsets[rank]); err != nil {
		return 0, 0, err
	}
	zr, err := zlib.NewReader(bytes.NewReader(payload))
	if err != nil {
		return 0, 0, err
	}
	defer zr.Close()
	var word [4]byte
	for _, b := range g.Blocks {
		for i := range b.Data {
			if _, err := io.ReadFull(zr, word[:]); err != nil {
				return 0, 0, fmt.Errorf("checkpoint: short payload: %v", err)
			}
			b.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(word[:]))
		}
	}
	return hdr.Step, hdr.Time, nil
}
