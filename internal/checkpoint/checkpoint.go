// Package checkpoint provides lossless save/restore of the full simulation
// state. The paper avoids full-state serialization at production scale
// ("the serialization to file of the simulation state would involve I/O
// operations on Petabytes of data") by dumping only wavelet-compressed p
// and Γ; a reusable library nevertheless needs restartability, so this
// package writes the complete conserved state (all seven quantities, bit
// exact) through the same collective shared-file path as the dumps, with a
// DEFLATE pass to keep the footprint reasonable.
//
// Format version 2 records each rank's canonical block-id table, so a
// checkpoint is addressed by global block — not by writer decomposition —
// and can be restored into any layout and rank count sharing the same
// global block box (each reading rank pulls exactly the blocks it owns out
// of whichever writer payloads hold them). Version 1 files, which implied a
// cartesian decomposition, are still readable: their tables are derived
// from the recorded rank grid.
package checkpoint

import (
	"bytes"
	"compress/zlib"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"cubism/internal/grid"
	"cubism/internal/mpi"
	"cubism/internal/sfc"
)

// Magic identifies checkpoint files.
const Magic = "MPCFCkp1"

// Header describes a checkpoint.
type Header struct {
	// Version 2 carries GlobalBlocks and the per-rank Blocks id tables;
	// version 0 (absent, historical) implies a cartesian decomposition of
	// RankDims ranks with BlockDims blocks each, in the grid's historical
	// per-rank SFC order.
	Version   int    `json:"version,omitempty"`
	BlockSize int    `json:"block_size"`
	RankDims  [3]int `json:"rank_dims"`
	BlockDims [3]int `json:"block_dims,omitempty"` // v1: blocks per rank per dimension
	// GlobalBlocks is the global block box (v2).
	GlobalBlocks [3]int `json:"global_blocks,omitempty"`
	// Blocks lists, per writer rank, the canonical linear block ids of its
	// payload in serialization order (v2).
	Blocks [][]int64 `json:"blocks,omitempty"`
	Step   int       `json:"step"`
	Time   float64   `json:"time"`
	// Offsets/Sizes locate each rank's zlib-compressed payload.
	Offsets []int64 `json:"offsets"`
	Sizes   []int64 `json:"sizes"`
}

// blockTables returns the global block box and the per-writer-rank
// canonical block-id tables, deriving them for version-1 files.
func (hdr *Header) blockTables() ([3]int, [][]int64, error) {
	if hdr.Version >= 2 {
		if len(hdr.Blocks) != len(hdr.Offsets) {
			return [3]int{}, nil, fmt.Errorf("checkpoint: %d block tables for %d ranks", len(hdr.Blocks), len(hdr.Offsets))
		}
		return hdr.GlobalBlocks, hdr.Blocks, nil
	}
	rd, bd := hdr.RankDims, hdr.BlockDims
	gb := [3]int{rd[0] * bd[0], rd[1] * bd[1], rd[2] * bd[2]}
	if rd[0]*rd[1]*rd[2] != len(hdr.Offsets) {
		return gb, nil, fmt.Errorf("checkpoint: rank grid %v does not match %d payloads", rd, len(hdr.Offsets))
	}
	order := sfc.Enumerate(sfc.ForBox(bd[0], bd[1], bd[2]), bd[0], bd[1], bd[2])
	tables := make([][]int64, len(hdr.Offsets))
	for r := range tables {
		rx, ry, rz := r%rd[0], (r/rd[0])%rd[1], r/(rd[0]*rd[1])
		tbl := make([]int64, len(order))
		for i, c := range order {
			x, y, z := rx*bd[0]+c[0], ry*bd[1]+c[1], rz*bd[2]+c[2]
			tbl[i] = (int64(z)*int64(gb[1])+int64(y))*int64(gb[0]) + int64(x)
		}
		tables[r] = tbl
	}
	return gb, tables, nil
}

// Write saves the rank-local grid state collectively into path. All ranks
// must call it with consistent metadata.
func Write(comm *mpi.Comm, path string, g *grid.Grid, rankDims [3]int, step int, time float64) error {
	// Serialize this rank's blocks (grid order) bit-exactly, then deflate.
	var raw bytes.Buffer
	zw := zlib.NewWriter(&raw)
	var word [4]byte
	ids := make([]byte, 8*len(g.Blocks))
	for bi, b := range g.Blocks {
		id := (int64(b.Z)*int64(g.NBY)+int64(b.Y))*int64(g.NBX) + int64(b.X)
		binary.LittleEndian.PutUint64(ids[8*bi:], uint64(id))
		for _, v := range b.Data {
			binary.LittleEndian.PutUint32(word[:], math.Float32bits(v))
			if _, err := zw.Write(word[:]); err != nil {
				return err
			}
		}
	}
	if err := zw.Close(); err != nil {
		return err
	}
	payload := raw.Bytes()
	mySize := int64(len(payload))
	prefix := comm.Exscan(mySize)
	sizes := comm.Gather(float64(mySize))
	idTables := comm.GatherBytesRoot(ids)

	var headerBytes []byte
	if comm.Rank() == 0 {
		hdr := Header{
			Version:      2,
			BlockSize:    g.N,
			RankDims:     rankDims,
			GlobalBlocks: [3]int{g.NBX, g.NBY, g.NBZ},
			Blocks:       make([][]int64, comm.Size()),
			Step:         step,
			Time:         time,
			Offsets:      make([]int64, comm.Size()),
			Sizes:        make([]int64, comm.Size()),
		}
		for r, raw := range idTables {
			tbl := make([]int64, len(raw)/8)
			for i := range tbl {
				tbl[i] = int64(binary.LittleEndian.Uint64(raw[8*i:]))
			}
			hdr.Blocks[r] = tbl
		}
		probe, err := json.Marshal(hdr)
		if err != nil {
			return err
		}
		headerLen := len(probe) + 32*comm.Size()
		base := int64(len(Magic)) + 4 + int64(headerLen)
		var off int64
		for r := range hdr.Offsets {
			hdr.Sizes[r] = int64(sizes[r])
			hdr.Offsets[r] = base + off
			off += hdr.Sizes[r]
		}
		body, err := json.Marshal(hdr)
		if err != nil {
			return err
		}
		if len(body) > headerLen {
			return fmt.Errorf("checkpoint: header estimate too small")
		}
		headerBytes = make([]byte, headerLen)
		copy(headerBytes, body)
		for i := len(body); i < headerLen; i++ {
			headerBytes[i] = ' '
		}
	}
	var myBase float64
	if comm.Rank() == 0 {
		myBase = float64(int64(len(Magic)) + 4 + int64(len(headerBytes)))
	}
	base := int64(comm.Allreduce(myBase, mpi.MaxOp))

	f, err := mpi.CreateShared(comm, path)
	if err != nil {
		return err
	}
	if comm.Rank() == 0 {
		var pre []byte
		pre = append(pre, Magic...)
		var lenBuf [4]byte
		binary.LittleEndian.PutUint32(lenBuf[:], uint32(len(headerBytes)))
		pre = append(pre, lenBuf[:]...)
		pre = append(pre, headerBytes...)
		if _, err := f.WriteAt(pre, 0); err != nil {
			return err
		}
	}
	if len(payload) > 0 {
		if _, err := f.WriteAt(payload, base+prefix); err != nil {
			return err
		}
	}
	comm.Barrier()
	return f.Close()
}

// ReadHeader parses the checkpoint metadata.
func ReadHeader(path string) (Header, error) {
	var hdr Header
	data, err := os.ReadFile(path)
	if err != nil {
		return hdr, err
	}
	if len(data) < len(Magic)+4 || string(data[:len(Magic)]) != Magic {
		return hdr, fmt.Errorf("checkpoint: %s: bad magic", path)
	}
	hlen := int(binary.LittleEndian.Uint32(data[len(Magic):]))
	hstart := len(Magic) + 4
	if hstart+hlen > len(data) {
		return hdr, fmt.Errorf("checkpoint: %s: truncated header", path)
	}
	body := bytes.TrimRight(data[hstart:hstart+hlen], " ")
	if err := json.Unmarshal(body, &hdr); err != nil {
		return hdr, fmt.Errorf("checkpoint: %s: %v", path, err)
	}
	return hdr, nil
}

// Restore loads the state of the blocks g owns from the checkpoint. The
// block size and global block box must match the file; the layout and rank
// count are free — each block is fetched from whichever writer payload
// holds it, by canonical id. Decompressed writer payloads are cached for
// the duration of the call, so restores that shuffle blocks across ranks
// cost at most one inflate per touched writer payload.
func Restore(path string, rank int, g *grid.Grid) (step int, simTime float64, err error) {
	hdr, err := ReadHeader(path)
	if err != nil {
		return 0, 0, err
	}
	gb, tables, err := hdr.blockTables()
	if err != nil {
		return 0, 0, err
	}
	if hdr.BlockSize != g.N || gb != [3]int{g.NBX, g.NBY, g.NBZ} {
		return 0, 0, fmt.Errorf("checkpoint: geometry mismatch: file %dx%v, grid %dx%v",
			hdr.BlockSize, gb, g.N, [3]int{g.NBX, g.NBY, g.NBZ})
	}
	// Locate every global block: id → (writer rank, ordinal).
	type loc struct{ rank, ord int }
	where := make(map[int64]loc)
	for r, tbl := range tables {
		for ord, id := range tbl {
			where[id] = loc{r, ord}
		}
	}
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, err
	}
	defer f.Close()
	inflated := make(map[int][]byte)
	payloadOf := func(r int) ([]byte, error) {
		if p, ok := inflated[r]; ok {
			return p, nil
		}
		raw := make([]byte, hdr.Sizes[r])
		if _, err := f.ReadAt(raw, hdr.Offsets[r]); err != nil {
			return nil, err
		}
		zr, err := zlib.NewReader(bytes.NewReader(raw))
		if err != nil {
			return nil, err
		}
		defer zr.Close()
		p, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("checkpoint: short payload: %v", err)
		}
		inflated[r] = p
		return p, nil
	}
	for _, b := range g.Blocks {
		id := (int64(b.Z)*int64(g.NBY)+int64(b.Y))*int64(g.NBX) + int64(b.X)
		l, ok := where[id]
		if !ok {
			return 0, 0, fmt.Errorf("checkpoint: block %d missing from %s", id, path)
		}
		p, err := payloadOf(l.rank)
		if err != nil {
			return 0, 0, err
		}
		blockBytes := 4 * len(b.Data)
		off := l.ord * blockBytes
		if off+blockBytes > len(p) {
			return 0, 0, fmt.Errorf("checkpoint: rank %d payload truncated at block %d", l.rank, id)
		}
		for i := range b.Data {
			b.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(p[off+4*i:]))
		}
	}
	return hdr.Step, hdr.Time, nil
}
