// Package cubism is a Go reproduction of CUBISM-MPCF, the compressible
// two-phase flow solver of Rossinelli et al., "11 PFLOP/s Simulations of
// Cloud Cavitation Collapse" (SC '13).
//
// The library simulates inviscid compressible two-phase flow (cloud
// cavitation collapse, shock-bubble interaction, shock tubes) with a finite
// volume method: fifth-order WENO reconstruction of primitive quantities,
// HLLE numerical fluxes, and low-storage third-order TVD Runge-Kutta time
// stepping, on a block-structured uniform grid reindexed by a space-filling
// curve. The software follows the paper's three-layer design — cluster
// (domain decomposition over a simulated MPI runtime), node (dynamic
// one-block work scheduling over goroutines), core (scalar and 4-lane
// "QPX"-model vector kernels) — and includes the paper's wavelet-based
// compression scheme for data dumps.
//
// Quick start:
//
//	cfg := cubism.Config{
//	    Blocks:    [3]int{4, 4, 4},
//	    BlockSize: 16,
//	    Extent:    1.0,
//	    Steps:     100,
//	    Init:      cubism.SodInit,
//	}
//	summary, err := cubism.Run(cfg, func(s cubism.StepInfo) {
//	    fmt.Printf("step %d t=%.3g dt=%.3g\n", s.Step, s.Time, s.DT)
//	})
//
// See examples/ for cloud collapse, shock-bubble interaction and
// compression walkthroughs, and cmd/mpcf-bench for the harness that
// regenerates every table and figure of the paper's evaluation.
package cubism

import (
	"fmt"
	"io"
	"math"
	"os"
	"strings"
	"time"

	"cubism/internal/cloud"
	"cubism/internal/cluster"
	"cubism/internal/compress"
	"cubism/internal/dump"
	"cubism/internal/grid"
	"cubism/internal/mpi"
	"cubism/internal/physics"
	"cubism/internal/scenario"
	"cubism/internal/sim"
	"cubism/internal/telemetry"
	"cubism/internal/transport"
	"cubism/internal/transport/faulty"
)

// State is a primitive flow state: density, velocity, pressure and the two
// material functions Γ = 1/(γ-1) and Π = γ p_c/(γ-1).
type State = physics.Prim

// Material describes one pure phase (specific heat ratio γ and correction
// pressure p_c of the stiffened equation of state).
type Material = physics.Material

// The paper's two phases (§7): water vapor and pressurized liquid water.
var (
	Vapor  = physics.Vapor
	Liquid = physics.Liquid
)

// Mix blends the material functions of two phases by vapor volume fraction.
func Mix(liquid, vapor Material, alpha float64) (gamma, pi float64) {
	return physics.Mix(liquid, vapor, alpha)
}

// Face identifies a domain face for boundary conditions and diagnostics.
type Face = grid.Face

// Domain faces.
const (
	XLo = grid.XLo
	XHi = grid.XHi
	YLo = grid.YLo
	YHi = grid.YHi
	ZLo = grid.ZLo
	ZHi = grid.ZHi
)

// BC assigns a boundary condition to each face.
type BC = grid.BC

// Boundary condition kinds.
const (
	Absorbing  = grid.Absorbing
	Reflecting = grid.Reflecting
	Periodic   = grid.Periodic
)

// Convenience boundary-condition constructors.
var (
	DefaultBC  = grid.DefaultBC
	WallBC     = grid.WallBC
	PeriodicBC = grid.PeriodicBC
)

// Bubble is one spherical vapor cavity of a cloud.
type Bubble = cloud.Bubble

// CloudSpec describes a bubble cloud (lognormal radii, non-overlapping
// rejection packing).
type CloudSpec = cloud.Spec

// GenerateCloud samples a reproducible bubble cloud.
func GenerateCloud(spec CloudSpec) ([]Bubble, error) { return spec.Generate() }

// CloudField builds the two-phase initial condition of a bubble cloud with
// the paper's material states; eps is the interface smoothing half-width.
func CloudField(bubbles []Bubble, eps float64) func(x, y, z float64) State {
	f := cloud.NewField(bubbles, eps)
	return f.At
}

// SodInit is the classic Sod shock-tube initial condition along x.
var SodInit = sim.SodInit

// ScenarioParams overrides a named scenario's laptop-scale defaults; the
// zero value keeps every default.
type ScenarioParams = scenario.Params

// ScenarioCase is a fully initialized simulation setup from the scenario
// registry, with the analytic references (interaction parameter β, Rayleigh
// collapse time) its observables are judged against.
type ScenarioCase = scenario.Case

// ScenarioObserver reduces a scenario run to the paper's Figure-5 collapse
// observables (peak/wall pressure amplification, kinetic energy, equivalent
// cloud radius, collapse time vs the Rayleigh prediction).
type ScenarioObserver = scenario.Observer

// ScenarioNames lists the registered scenario names (sorted): seeded
// lognormal bubble clouds ("cloud"), shock-induced single-bubble collapse
// ("shockbubble") and regular bubble arrays ("array").
func ScenarioNames() []string { return scenario.Names() }

// BuildScenario builds a named scenario from the registry.
func BuildScenario(name string, p ScenarioParams) (*ScenarioCase, error) {
	return scenario.Build(name, p)
}

// NewScenarioObserver attaches the observables pipeline to a built case;
// feed it as (or from) the Run step callback and call Metrics() afterwards.
func NewScenarioObserver(c *ScenarioCase) *ScenarioObserver {
	return scenario.NewObserver(c)
}

// ScenarioConfig converts a built case into a Config ready for Run, carrying
// the decomposition, initial condition, boundary conditions and wall
// diagnostics of the case. Dumps, telemetry and transports can be layered on
// the returned Config before running.
func ScenarioConfig(c *ScenarioCase) Config {
	cc := c.Config.Cluster
	return Config{
		Ranks:      cc.RankDims,
		Blocks:     cc.BlockDims,
		BlockSize:  cc.BlockSize,
		Extent:     cc.Extent,
		Boundaries: cc.BC,
		Workers:    cc.Workers,
		CFL:        cc.CFL,
		Init:       cc.Init,
		Steps:      c.Config.Steps,
		DiagEvery:  c.Config.DiagEvery,
		Wall:       c.Config.Wall,
		HasWall:    c.Config.HasWall,
	}
}

// Config describes a simulation campaign.
type Config struct {
	// Ranks is the cartesian decomposition into (simulated) MPI ranks;
	// zero means a single rank.
	Ranks [3]int
	// Blocks is the number of blocks per rank per dimension.
	Blocks [3]int
	// BlockSize is the block edge in cells (the paper's production size is
	// 32; it must be a multiple of 4 and at least 8).
	BlockSize int
	// Extent is the physical domain size along x.
	Extent float64
	// Boundaries are the physical boundary conditions (default absorbing).
	Boundaries BC
	// Workers is the number of worker goroutines per rank (0: NumCPU).
	Workers int
	// Vector selects the QPX-model vector kernels.
	Vector bool
	// CFL is the time-step safety factor (0 defaults to the paper's 0.3).
	CFL float64
	// TimeStepper selects the Runge-Kutta formulation: "lsrk3" (default,
	// the paper's low-storage scheme) or "ssprk3" (three-register ablation).
	TimeStepper string
	// Pipeline selects the dependency-driven execution model for lsrk3
	// steps: fused per-block RHS+UP tasks on the persistent worker pool,
	// released per installed halo face. False (the default) keeps the
	// bulk-synchronous staged baseline; both are bitwise identical. The CLI
	// drivers default this on via their -pipeline flag.
	Pipeline bool
	// Init provides the initial condition in global coordinates.
	Init func(x, y, z float64) State

	// Steps and TEnd bound the run (either may be zero).
	Steps int
	TEnd  float64

	// DumpEvery writes compressed p and Γ snapshots every so many steps
	// into DumpDir (0: never).
	DumpEvery int
	DumpDir   string
	// EpsP, EpsG are decimation thresholds (0: the paper's 1e-2 / 1e-3).
	EpsP, EpsG float64
	// Encoder is the lossless dump coder: "zlib" (default), "rle", "sig"
	// or "huff".
	Encoder string
	// StreamFrames additionally ships every dump as an assembled frame
	// over the dedicated TagDump transport channel to the rank-0 sink,
	// bitwise identical to the dump file. Must be uniform across the
	// fleet (the streaming is collective).
	StreamFrames bool
	// FrameSink receives assembled frames on rank 0.
	FrameSink FrameSink

	// DiagEvery controls the diagnostics cadence (0: every step).
	DiagEvery int
	// CheckpointEvery writes a lossless full-state checkpoint every so many
	// steps (0: never) into CheckpointPath.
	CheckpointEvery int
	CheckpointPath  string
	// RestorePath resumes the run from a checkpoint written by a previous
	// run with the same decomposition: grid state, step counter and
	// simulated time are restored before the first step. This is the
	// recovery path after a rank failure (mpcf-sim -restore; see
	// docs/networking.md).
	RestorePath string
	// Wall marks a face as the solid wall for wall-pressure diagnostics.
	Wall    Face
	HasWall bool

	// Control (optional) attaches a cancellation controller: Stop() ends
	// the run gracefully at the next step boundary, collectively across
	// all ranks (a Stop on any one rank of a distributed world drains the
	// whole fleet at the same step). The run returns normally with
	// Summary.Stopped set.
	Control *Controller
	// StopCheckpoint writes a final checkpoint to CheckpointPath when a
	// controller stop ends the run, even with periodic checkpointing off —
	// so a canceled or drained job can resume from exactly the stop
	// boundary via RestorePath.
	StopCheckpoint bool

	// Telemetry (optional) attaches the observability sinks — span tracer,
	// metrics registry and structured step log (see docs/observability.md).
	// Nil disables all instrumentation beyond a pointer check per phase.
	Telemetry *Telemetry

	// Observe (optional) enables the cross-rank performance observatory:
	// every rank streams per-phase step timings (plus spans and counter
	// snapshots on tcp worlds) to rank 0, which writes one merged
	// clock-aligned Chrome trace and a Table-4-shaped cluster imbalance
	// report (see docs/observability.md).
	Observe *ObserveConfig

	// Layout selects how blocks are assigned to ranks: "cartesian" (default;
	// each rank owns the Blocks box implied by its grid coordinates) or a
	// space-filling curve — "hilbert", "morton", "rowmajor" — partitioned
	// into contiguous chunks (see docs/sharding.md). All layouts are bitwise
	// identical in physics.
	Layout string
	// RebalanceEvery measures load imbalance every so many steps (0: never)
	// and, on SFC layouts, migrates blocks when the max/avg-1 imbalance
	// exceeds RebalanceThreshold (0: 0.1). ForceRebalanceStep forces one
	// rebalance at exactly that step regardless of the measured imbalance —
	// the migration fault-drill hook.
	RebalanceEvery     int
	RebalanceThreshold float64
	ForceRebalanceStep int

	// Net (optional) selects the wire transport. Nil or Transport "inproc"
	// keeps the default single-process world (all ranks as goroutines);
	// Transport "tcp" makes this process one rank of a multi-process world
	// (see docs/networking.md and cmd/mpcf-launch).
	Net *NetConfig

	// ChecksumPath (optional) writes the final conserved-field totals as
	// hex-encoded float64 bit patterns to this file on rank 0 after the
	// last step — a transport-independent fingerprint: a TCP multi-process
	// run and an in-process run of the same scenario must produce byte-for-
	// byte identical files.
	ChecksumPath string
}

// NetConfig configures the wire transport of a multi-process run.
type NetConfig struct {
	// Transport is "inproc" (default) or "tcp".
	Transport string
	// Rank is this process's rank in [0, product(Ranks)).
	Rank int
	// Coord is the rendezvous coordinator address; rank 0 listens on it.
	Coord string
	// Listen is the data listener bind address ("" picks any free port).
	Listen string
	// DialTimeout bounds rendezvous and mesh construction (0: 30s).
	// ReadTimeout/WriteTimeout are per-frame I/O deadlines (0: none).
	// CloseTimeout bounds the graceful shutdown drain (0: 10s).
	DialTimeout  time.Duration
	ReadTimeout  time.Duration
	WriteTimeout time.Duration
	CloseTimeout time.Duration
	// SendQueue is the per-peer outgoing frame queue depth (0: 256).
	SendQueue int

	// Robustness knobs (zero: transport defaults; docs/networking.md):
	// heartbeat cadence on idle links, the failure-detection horizon for an
	// unreachable peer, the ack-stall bound that forces a reconnect, and the
	// per-episode reconnect attempt cap.
	HeartbeatInterval time.Duration
	PeerTimeout       time.Duration
	RetransmitTimeout time.Duration
	MaxReconnect      int

	// Chaos, when non-empty, injects seeded wire faults on outgoing data
	// frames for fault-drill runs — a spec like
	// "drop=0.01,reset=0.001,seed=7" (internal/transport/faulty.Parse).
	// The reliability layer must mask every injected fault: physics results
	// stay bitwise identical to a clean run.
	Chaos string

	// OnWireError (optional) runs when the transport escalates an
	// unrecoverable peer failure, before the process aborts. Drivers use it
	// to flush telemetry buffers so chaos runs leave usable partial traces
	// (the default without it is an immediate exit).
	OnWireError func(error)
}

// Telemetry bundles the observability sinks threaded through the solver
// stack: a Chrome trace_event span tracer, a Prometheus/expvar metrics
// registry, and a JSONL step logger.
type Telemetry = telemetry.Set

// ObserveConfig enables the cross-rank performance observatory (merged
// clock-aligned traces and Table-4-shaped imbalance reports on rank 0).
type ObserveConfig = sim.ObserveConfig

// ImbalanceReport is the observatory's cluster imbalance report, delivered
// in Summary.Observatory.
type ImbalanceReport = telemetry.ImbalanceReport

// NewTracer returns an enabled solver-phase span tracer; export it with
// WriteFile after the run and open the JSON in chrome://tracing or Perfetto.
func NewTracer() *telemetry.Tracer { return telemetry.NewTracer() }

// NewMetricsRegistry returns an empty metrics registry, servable via
// ServeTelemetry and renderable in the Prometheus text format.
func NewMetricsRegistry() *telemetry.Registry { return telemetry.NewRegistry() }

// NewStepLogger returns a JSONL step logger writing to w.
func NewStepLogger(w io.Writer) *telemetry.StepLogger { return telemetry.NewStepLogger(w) }

// ServeTelemetry starts the opt-in HTTP listener with /metrics,
// /debug/vars and /debug/pprof (addr ":0" picks a free port).
func ServeTelemetry(addr string, reg *telemetry.Registry) (*telemetry.Server, error) {
	return telemetry.Serve(addr, reg)
}

// Controller is the graceful-cancellation hook of a run (see
// Config.Control); the zero value is ready, NewController is convenience.
type Controller = sim.Controller

// NewController returns a ready cancellation controller.
func NewController() *Controller { return sim.NewController() }

// StepInfo is delivered after every step.
type StepInfo = sim.StepInfo

// Diagnostics are the global flow statistics of the paper's Figure 5.
type Diagnostics = cluster.Diagnostics

// Summary reports campaign-level results.
type Summary = sim.Summary

// Run executes the campaign and invokes onStep (may be nil) after each
// step with rank-0 visibility of the global state.
func Run(cfg Config, onStep func(StepInfo)) (Summary, error) {
	ranks := cfg.Ranks
	if ranks == ([3]int{}) {
		ranks = [3]int{1, 1, 1}
	}
	cfl := cfg.CFL
	if cfl == 0 {
		cfl = 0.3
	}
	var world *mpi.World
	if n := cfg.Net; n != nil && n.Transport != "" && n.Transport != "inproc" {
		if n.Transport != "tcp" {
			return Summary{}, fmt.Errorf("cubism: unknown transport %q (want inproc or tcp)", n.Transport)
		}
		var fault transport.FaultInjector
		if n.Chaos != "" {
			plan, err := faulty.Parse(n.Chaos)
			if err != nil {
				return Summary{}, fmt.Errorf("cubism: chaos spec: %w", err)
			}
			fault = faulty.New(plan)
		}
		w, err := mpi.ConnectTCP(mpi.TCPConfig{
			OnError:           n.OnWireError,
			Rank:              n.Rank,
			Size:              ranks[0] * ranks[1] * ranks[2],
			Coord:             n.Coord,
			Listen:            n.Listen,
			DialTimeout:       n.DialTimeout,
			ReadTimeout:       n.ReadTimeout,
			WriteTimeout:      n.WriteTimeout,
			CloseTimeout:      n.CloseTimeout,
			SendQueue:         n.SendQueue,
			HeartbeatInterval: n.HeartbeatInterval,
			PeerTimeout:       n.PeerTimeout,
			RetransmitTimeout: n.RetransmitTimeout,
			MaxReconnect:      n.MaxReconnect,
			Fault:             fault,
			Registry:          cfg.Telemetry.GetMetrics(),
			Tracer:            cfg.Telemetry.GetTracer(),
		})
		if err != nil {
			return Summary{}, err
		}
		world = w
	}
	var sumErr error
	var onFinish func(r *cluster.Rank)
	if cfg.ChecksumPath != "" {
		path := cfg.ChecksumPath
		onFinish = func(r *cluster.Rank) {
			tot := r.ConservedTotals() // collective: every rank participates
			if r.Comm.Rank() == 0 {
				if err := writeChecksums(path, tot); err != nil {
					sumErr = err
				}
			}
		}
	}
	summary, err := sim.Run(sim.Config{
		Cluster: cluster.Config{
			RankDims:    ranks,
			BlockDims:   cfg.Blocks,
			BlockSize:   cfg.BlockSize,
			Extent:      cfg.Extent,
			BC:          cfg.Boundaries,
			Workers:     cfg.Workers,
			Vector:      cfg.Vector,
			CFL:         cfl,
			TimeStepper: cfg.TimeStepper,
			Pipeline:    cfg.Pipeline,
			Init:        cfg.Init,
			Layout:      cfg.Layout,
		},
		RebalanceEvery:     cfg.RebalanceEvery,
		RebalanceThreshold: cfg.RebalanceThreshold,
		ForceRebalanceStep: cfg.ForceRebalanceStep,
		Steps:              cfg.Steps,
		TEnd:               cfg.TEnd,
		DumpEvery:          cfg.DumpEvery,
		DumpDir:            cfg.DumpDir,
		EpsP:               cfg.EpsP,
		EpsG:               cfg.EpsG,
		Encoder:            cfg.Encoder,
		StreamFrames:       cfg.StreamFrames,
		FrameSink:          cfg.FrameSink,
		DiagEvery:          cfg.DiagEvery,
		CheckpointEvery:    cfg.CheckpointEvery,
		CheckpointPath:     cfg.CheckpointPath,
		RestorePath:        cfg.RestorePath,
		Wall:               cfg.Wall,
		HasWall:            cfg.HasWall,
		Control:            cfg.Control,
		StopCheckpoint:     cfg.StopCheckpoint,
		Telemetry:          cfg.Telemetry,
		Observe:            cfg.Observe,
		World:              world,
		OnFinish:           onFinish,
	}, onStep)
	if err == nil {
		err = sumErr
	}
	return summary, err
}

// writeChecksums renders the conserved totals as hex float64 bit patterns,
// one quantity per line, so runs can be compared bitwise with cmp/diff.
func writeChecksums(path string, t cluster.Totals) error {
	var b strings.Builder
	for _, e := range []struct {
		name string
		v    float64
	}{
		{"mass", t.Mass},
		{"mom_x", t.MomX},
		{"mom_y", t.MomY},
		{"mom_z", t.MomZ},
		{"energy", t.Energy},
		{"abs_mom", t.AbsMomSum},
		{"gamma_min", t.GammaMin},
		{"gamma_max", t.GammaMax},
		{"pi_min", t.PiMin},
		{"pi_max", t.PiMax},
	} {
		fmt.Fprintf(&b, "%s %016x\n", e.name, math.Float64bits(e.v))
	}
	fmt.Fprintf(&b, "nonfinite %d\n", t.NonFinite)
	return os.WriteFile(path, []byte(b.String()), 0o644)
}

// DumpHeader is the self-describing metadata of a compressed dump file.
type DumpHeader = dump.Header

// Frame is one streamed compressed snapshot (full dump-file bytes).
type Frame = dump.Frame

// FrameSink consumes streamed frames on the sink rank.
type FrameSink = dump.FrameSink

// FrameRecord is the JSONL shape of a streamed frame in a -frame-log file.
type FrameRecord = dump.FrameRecord

// DecodeDumpFrame parses a complete dump-file image (a streamed frame)
// exactly like ReadDump parses a file on disk.
func DecodeDumpFrame(data []byte) (DumpHeader, []*compress.Compressed, error) {
	return dump.Decode(data)
}

// ReadDump opens a compressed dump file and reconstructs the per-block
// scalar fields of every rank (rank-major, blocks in space-filling-curve
// order, each block N³ values x-fastest).
func ReadDump(path string) (DumpHeader, [][][]float32, error) {
	hdr, payloads, err := dump.Read(path)
	if err != nil {
		return hdr, nil, err
	}
	fields := make([][][]float32, len(payloads))
	for r, c := range payloads {
		fields[r], err = c.Decompress()
		if err != nil {
			return hdr, nil, err
		}
	}
	return hdr, fields, nil
}

// CompressionStats summarizes one compression pass.
type CompressionStats = compress.Stats
