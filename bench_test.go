package cubism

// One benchmark per table and figure of the paper's evaluation. The
// narrative harness (cmd/mpcf-bench) prints the paper-style rows; these
// testing.B entry points time the primary code path behind each experiment
// so regressions surface in `go test -bench`.
//
// Naming: BenchmarkTable<k>… / BenchmarkFig<k>… matches the experiment
// index in DESIGN.md.

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"testing"

	"cubism/internal/baseline"
	"cubism/internal/cloud"
	"cubism/internal/cluster"
	"cubism/internal/compress"
	"cubism/internal/core"
	"cubism/internal/grid"
	"cubism/internal/mpi"
	"cubism/internal/node"
	"cubism/internal/physics"
	"cubism/internal/roofline"
	"cubism/internal/wavelet"
)

const benchN = 16 // block edge (paper production: 32)

func benchField(x, y, z float64) physics.Prim {
	s := math.Sin(2 * math.Pi * x)
	c := math.Cos(2 * math.Pi * y)
	t := math.Sin(2 * math.Pi * z)
	return physics.Prim{
		Rho: 500 + 400*s*c,
		U:   10 * c * t, V: -5 * s * t, W: 7 * s * c,
		P: 50e5 + 30e5*c*t,
		G: 1.5 + 1.0*s*t, Pi: 2e8 + 1e8*c,
	}
}

func benchGrid(n, nb int) *grid.Grid {
	g := grid.New(grid.Desc{N: n, NBX: nb, NBY: nb, NBZ: nb, H: 1.0 / float64(n*nb)})
	for _, b := range g.Blocks {
		for iz := 0; iz < n; iz++ {
			for iy := 0; iy < n; iy++ {
				for ix := 0; ix < n; ix++ {
					x, y, z := g.CellCenter(b.X*n+ix, b.Y*n+iy, b.Z*n+iz)
					c := benchField(x, y, z).ToCons()
					cell := b.At(ix, iy, iz)
					cell[physics.QR] = float32(c.R)
					cell[physics.QU] = float32(c.RU)
					cell[physics.QV] = float32(c.RV)
					cell[physics.QW] = float32(c.RW)
					cell[physics.QE] = float32(c.E)
					cell[physics.QG] = float32(c.G)
					cell[physics.QP] = float32(c.Pi)
				}
			}
		}
	}
	return g
}

func setFlops(b *testing.B, flopsPerOp int64) {
	b.ReportMetric(float64(flopsPerOp)*float64(b.N)/b.Elapsed().Seconds()/1e9, "GFLOP/s")
}

// --- Table 3: naive vs reordered data layout ------------------------------

// BenchmarkTable3NaiveRHS times the no-reuse baseline RHS (the "naive" row).
func BenchmarkTable3NaiveRHS(b *testing.B) {
	s := baseline.New(benchN, benchN, benchN, 1.0/benchN)
	s.Init(benchField)
	cells := int64(benchN * benchN * benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RHSOnce()
	}
	b.StopTimer()
	setFlops(b, cells*core.RHSFlopsPerCell(benchN))
}

// BenchmarkTable3ReorderedRHS times the block/slice-reordered RHS.
func BenchmarkTable3ReorderedRHS(b *testing.B) {
	g := benchGrid(benchN, 1)
	lab := grid.NewLab(benchN)
	lab.Load(g, grid.PeriodicBC(), g.Blocks[0])
	r := core.NewRHS(benchN)
	out := make([]float32, benchN*benchN*benchN*physics.NQ)
	cells := int64(benchN * benchN * benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Compute(lab, g.H, out)
	}
	b.StopTimer()
	setFlops(b, cells*core.RHSFlopsPerCell(benchN))
}

// --- Table 4: compression pipeline ----------------------------------------

func benchCompress(b *testing.B, q compress.Quantity, eps float64) {
	bubbles, err := (cloud.Spec{
		Center: [3]float64{0.5, 0.5, 0.5}, Radius: 0.35, N: 8,
		RMin: 0.05, RMax: 0.1, Seed: 7,
	}).Generate()
	if err != nil {
		b.Fatal(err)
	}
	f := cloud.NewField(bubbles, 0.02)
	g := grid.New(grid.Desc{N: benchN, NBX: 2, NBY: 2, NBZ: 2, H: 1.0 / (2 * benchN)})
	fillBench(g, f.At)
	b.SetBytes(int64(g.Cells()) * 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := compress.Compress(g, q, compress.Options{
			Epsilon: eps, Encoder: "zlib", Workers: 4,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func fillBench(g *grid.Grid, f func(x, y, z float64) physics.Prim) {
	n := g.N
	for _, blk := range g.Blocks {
		for iz := 0; iz < n; iz++ {
			for iy := 0; iy < n; iy++ {
				for ix := 0; ix < n; ix++ {
					x, y, z := g.CellCenter(blk.X*n+ix, blk.Y*n+iy, blk.Z*n+iz)
					c := f(x, y, z).ToCons()
					cell := blk.At(ix, iy, iz)
					cell[physics.QR] = float32(c.R)
					cell[physics.QU] = float32(c.RU)
					cell[physics.QV] = float32(c.RV)
					cell[physics.QW] = float32(c.RW)
					cell[physics.QE] = float32(c.E)
					cell[physics.QG] = float32(c.G)
					cell[physics.QP] = float32(c.Pi)
				}
			}
		}
	}
}

// BenchmarkTable4CompressGamma times the full Γ compression pipeline.
func BenchmarkTable4CompressGamma(b *testing.B) { benchCompress(b, compress.Gamma, 1e-3) }

// BenchmarkTable4CompressPressure times the full p compression pipeline.
func BenchmarkTable4CompressPressure(b *testing.B) { benchCompress(b, compress.Pressure, 1e-2) }

// --- Table 5: full production step (cluster layer) ------------------------

// BenchmarkTable5ClusterStep times one full simulation step (DT + RK3 with
// ghost exchange and dynamic scheduling) on a single rank.
func BenchmarkTable5ClusterStep(b *testing.B) {
	world := mpi.NewWorld(1)
	world.Run(func(comm *mpi.Comm) {
		r := cluster.NewRank(comm, cluster.Config{
			RankDims:  [3]int{1, 1, 1},
			BlockDims: [3]int{2, 2, 2},
			BlockSize: benchN,
			Extent:    1,
			BC:        grid.PeriodicBC(),
			Workers:   runtime.NumCPU(),
			CFL:       0.3,
			Init:      benchField,
		})
		r.Advance() // warm-up
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Advance()
		}
		b.StopTimer()
		b.ReportMetric(float64(r.G.Cells())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpoints/s")
	})
}

// --- Table 6: node vs cluster RHS ------------------------------------------

// BenchmarkTable6NodeRHS times the node layer evaluating all blocks, no MPI.
func BenchmarkTable6NodeRHS(b *testing.B) {
	g := benchGrid(benchN, 2)
	e := node.New(g, grid.PeriodicBC(), runtime.NumCPU(), false)
	outs := make([][]float32, len(g.Blocks))
	for i := range outs {
		outs[i] = make([]float32, benchN*benchN*benchN*physics.NQ)
	}
	cells := int64(g.Cells())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ComputeRHS(g.Blocks, outs)
	}
	b.StopTimer()
	setFlops(b, cells*core.RHSFlopsPerCell(benchN))
}

// BenchmarkTable6ClusterRHS times the same evaluation including the ghost
// exchange of a single-rank cluster (periodic self-messages).
func BenchmarkTable6ClusterRHS(b *testing.B) {
	world := mpi.NewWorld(1)
	world.Run(func(comm *mpi.Comm) {
		r := cluster.NewRank(comm, cluster.Config{
			RankDims:  [3]int{1, 1, 1},
			BlockDims: [3]int{2, 2, 2},
			BlockSize: benchN,
			Extent:    1,
			BC:        grid.PeriodicBC(),
			Workers:   runtime.NumCPU(),
			CFL:       0.3,
			Init:      benchField,
		})
		cells := int64(r.G.Cells())
		r.ComputeRHSOnly()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.ComputeRHSOnly()
		}
		b.StopTimer()
		setFlops(b, cells*core.RHSFlopsPerCell(benchN))
	})
}

// --- Table 7: scalar vs vector kernels -------------------------------------

func benchRHS(b *testing.B, vector, staged bool) {
	g := benchGrid(benchN, 1)
	lab := grid.NewLab(benchN)
	lab.Load(g, grid.PeriodicBC(), g.Blocks[0])
	out := make([]float32, benchN*benchN*benchN*physics.NQ)
	cells := int64(benchN * benchN * benchN)
	if vector {
		r := core.NewRHSVec(benchN)
		r.Staged = staged
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Compute(lab, g.H, out)
		}
	} else {
		r := core.NewRHS(benchN)
		r.Staged = staged
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Compute(lab, g.H, out)
		}
	}
	b.StopTimer()
	setFlops(b, cells*core.RHSFlopsPerCell(benchN))
}

// BenchmarkTable7RHSScalar times the scalar ("C++") RHS kernel.
func BenchmarkTable7RHSScalar(b *testing.B) { benchRHS(b, false, false) }

// BenchmarkTable7RHSQPX times the vector ("QPX") RHS kernel.
func BenchmarkTable7RHSQPX(b *testing.B) { benchRHS(b, true, false) }

// BenchmarkTable7DTScalar times the scalar SOS kernel.
func BenchmarkTable7DTScalar(b *testing.B) {
	g := benchGrid(benchN, 1)
	data := g.Blocks[0].Data
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += core.MaxCharVelScalar(data)
	}
	b.StopTimer()
	_ = sink
	setFlops(b, int64(benchN*benchN*benchN)*core.SOSFlopsPerCell)
}

// BenchmarkTable7DTQPX times the vector SOS kernel.
func BenchmarkTable7DTQPX(b *testing.B) {
	g := benchGrid(benchN, 1)
	data := g.Blocks[0].Data
	var sink float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sink += core.MaxCharVelQPX(data)
	}
	b.StopTimer()
	_ = sink
	setFlops(b, int64(benchN*benchN*benchN)*core.SOSFlopsPerCell)
}

func benchUP(b *testing.B, vector bool) {
	values := benchN * benchN * benchN * physics.NQ
	u := make([]float32, values)
	reg := make([]float32, values)
	rhs := make([]float32, values)
	for i := range u {
		u[i] = float32(i%7) + 1
		rhs[i] = float32(i%11) - 5
	}
	b.SetBytes(int64(values) * core.UpdateBytesPerValue)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vector {
			core.UpdateQPX(u, reg, rhs, -5.0/9.0, 15.0/16.0, 1e-6)
		} else {
			core.UpdateScalar(u, reg, rhs, -5.0/9.0, 15.0/16.0, 1e-6)
		}
	}
	b.StopTimer()
	setFlops(b, int64(values)*core.UpdateFlopsPerValue)
}

// BenchmarkTable7UPScalar times the scalar UP kernel.
func BenchmarkTable7UPScalar(b *testing.B) { benchUP(b, false) }

// BenchmarkTable7UPQPX times the vector UP kernel.
func BenchmarkTable7UPQPX(b *testing.B) { benchUP(b, true) }

func benchFWT(b *testing.B, vector bool) {
	tr := wavelet.NewFWT3(benchN)
	data := make([]float32, benchN*benchN*benchN)
	for i := range data {
		data[i] = float32(i%97) * 0.25
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if vector {
			tr.ForwardVec(data)
		} else {
			tr.Forward(data)
		}
	}
	b.StopTimer()
	setFlops(b, int64(benchN*benchN*benchN)*wavelet.FlopsPerCell)
}

// BenchmarkTable7FWTScalar times the scalar forward wavelet transform.
func BenchmarkTable7FWTScalar(b *testing.B) { benchFWT(b, false) }

// BenchmarkTable7FWTQPX times the 4-stream vectorized transform.
func BenchmarkTable7FWTQPX(b *testing.B) { benchFWT(b, true) }

// --- Table 8: instruction audit --------------------------------------------

// BenchmarkTable8InstructionMix times the audited instruction-mix analysis.
func BenchmarkTable8InstructionMix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := core.InstructionMix(benchN)
		if len(rows) != 6 {
			b.Fatal("unexpected mix size")
		}
	}
}

// --- Table 9: staged vs fused WENO→HLLE ------------------------------------

// BenchmarkTable9Staged times the non-fused baseline path.
func BenchmarkTable9Staged(b *testing.B) { benchRHS(b, false, true) }

// BenchmarkTable9Fused times the micro-fused path.
func BenchmarkTable9Fused(b *testing.B) { benchRHS(b, false, false) }

// BenchmarkTable9StagedQPX times the non-fused vector path.
func BenchmarkTable9StagedQPX(b *testing.B) { benchRHS(b, true, true) }

// BenchmarkTable9FusedQPX times the micro-fused vector path.
func BenchmarkTable9FusedQPX(b *testing.B) { benchRHS(b, true, false) }

// --- Table 10: roofline projections ----------------------------------------

// BenchmarkTable10Projection times the roofline projection math (cheap, for
// completeness of the per-table index).
func BenchmarkTable10Projection(b *testing.B) {
	ms := []roofline.Machine{roofline.BGQ, roofline.PizDaint, roofline.MonteRosa}
	oi := core.OperationalIntensityRHS(benchN)
	var sink float64
	for i := 0; i < b.N; i++ {
		for _, m := range ms {
			sink += m.Project(oi, 0.8)
		}
	}
	_ = sink
}

// --- Figure 5: cloud-collapse step with diagnostics -------------------------

// BenchmarkFig5CloudStep times one production step of a small bubble cloud
// including the global diagnostics reductions.
func BenchmarkFig5CloudStep(b *testing.B) {
	bubbles, err := (cloud.Spec{
		Center: [3]float64{0.5, 0.5, 0.55}, Radius: 0.3, N: 8,
		RMin: 0.05, RMax: 0.1, Seed: 42,
	}).Generate()
	if err != nil {
		b.Fatal(err)
	}
	f := cloud.NewField(bubbles, 0.02)
	world := mpi.NewWorld(1)
	world.Run(func(comm *mpi.Comm) {
		r := cluster.NewRank(comm, cluster.Config{
			RankDims:  [3]int{1, 1, 1},
			BlockDims: [3]int{2, 2, 2},
			BlockSize: benchN,
			Extent:    1,
			BC:        grid.WallBC(grid.ZLo),
			Workers:   runtime.NumCPU(),
			CFL:       0.3,
			Init:      f.At,
		})
		r.Advance()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Advance()
			_ = r.Diagnose(grid.ZLo, true)
		}
		b.StopTimer()
		b.ReportMetric(float64(r.G.Cells())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpoints/s")
	})
}

// --- Figure 7: compressed dump ----------------------------------------------

// BenchmarkFig7Dump times one full compressed dump (FWT + decimation +
// encoding + parallel write) of the pressure field.
func BenchmarkFig7Dump(b *testing.B) {
	dir := b.TempDir()
	world := mpi.NewWorld(1)
	world.Run(func(comm *mpi.Comm) {
		r := cluster.NewRank(comm, cluster.Config{
			RankDims:  [3]int{1, 1, 1},
			BlockDims: [3]int{2, 2, 2},
			BlockSize: benchN,
			Extent:    1,
			Workers:   runtime.NumCPU(),
			CFL:       0.3,
			Init:      benchField,
		})
		b.SetBytes(int64(r.G.Cells()) * 4)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := r.Dump(dir+"/bench.mpcf", compress.Pressure, 1e-2, "zlib"); err != nil {
				b.Fatal(err)
			}
		}
	})
	os.Remove(dir + "/bench.mpcf")
}

// --- Figure 9: node-layer scaling --------------------------------------------

// BenchmarkFig9Workers times the node-layer RHS at 1, 2, 4, ... workers.
func BenchmarkFig9Workers(b *testing.B) {
	for workers := 1; workers <= runtime.NumCPU(); workers *= 2 {
		b.Run(fmt.Sprintf("workers-%d", workers), func(b *testing.B) {
			g := benchGrid(benchN, 2)
			e := node.New(g, grid.PeriodicBC(), workers, false)
			outs := make([][]float32, len(g.Blocks))
			for i := range outs {
				outs[i] = make([]float32, benchN*benchN*benchN*physics.NQ)
			}
			cells := int64(g.Cells())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				e.ComputeRHS(g.Blocks, outs)
			}
			b.StopTimer()
			setFlops(b, cells*core.RHSFlopsPerCell(benchN))
		})
	}
}

// --- §7 compression rates and throughput -------------------------------------

// BenchmarkCompressionRate reports the achieved rate as a metric while
// timing the pipeline at the paper's p threshold.
func BenchmarkCompressionRate(b *testing.B) {
	bubbles, _ := (cloud.Spec{
		Center: [3]float64{0.5, 0.5, 0.5}, Radius: 0.35, N: 8,
		RMin: 0.05, RMax: 0.1, Seed: 7,
	}).Generate()
	f := cloud.NewField(bubbles, 0.02)
	g := grid.New(grid.Desc{N: benchN, NBX: 2, NBY: 2, NBZ: 2, H: 1.0 / (2 * benchN)})
	fillBench(g, f.At)
	var rate float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, st, err := compress.Compress(g, compress.Pressure, compress.Options{
			Epsilon: 1e-2, Encoder: "zlib", Workers: 4,
		})
		if err != nil {
			b.Fatal(err)
		}
		rate = st.Rate()
	}
	b.StopTimer()
	b.ReportMetric(rate, "rate:1")
}

// BenchmarkThroughputBaseline times the naive comparator solver (points/s).
func BenchmarkThroughputBaseline(b *testing.B) {
	s := baseline.New(benchN, benchN, benchN, 1.0/benchN)
	s.Init(benchField)
	cells := int64(benchN * benchN * benchN)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
	b.StopTimer()
	b.ReportMetric(float64(cells)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpoints/s")
}

// BenchmarkThroughputProduction times the full production stack (points/s).
func BenchmarkThroughputProduction(b *testing.B) {
	world := mpi.NewWorld(1)
	world.Run(func(comm *mpi.Comm) {
		r := cluster.NewRank(comm, cluster.Config{
			RankDims:  [3]int{1, 1, 1},
			BlockDims: [3]int{1, 1, 1},
			BlockSize: benchN,
			Extent:    1,
			Workers:   runtime.NumCPU(),
			CFL:       0.3,
			Init:      benchField,
		})
		r.Advance()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			r.Advance()
		}
		b.StopTimer()
		b.ReportMetric(float64(r.G.Cells())*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mpoints/s")
	})
}
