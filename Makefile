# Verification targets; `make check` is the tier-1 gate plus vet and the
# race-enabled telemetry/sim/cluster tests. `make verify` runs the full
# exact-solution verification ladder and writes VERIFY.json
# (docs/verification.md).

GO ?= go

.PHONY: check vet build bin test race bench bench-smoke bench-net smoke-net sim-json verify verify-short fuzz-seed chaos bench-snapshot bench-compare perf-smoke service-smoke

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# Binaries for multi-process runs: mpcf-launch and mpcf-serve look for
# mpcf-sim next to themselves, so all land in bin/.
bin:
	$(GO) build -o bin/mpcf-sim ./cmd/mpcf-sim
	$(GO) build -o bin/mpcf-launch ./cmd/mpcf-launch
	$(GO) build -o bin/mpcf-serve ./cmd/mpcf-serve

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/telemetry ./internal/sim ./internal/cluster ./internal/layout ./internal/node ./internal/transport ./internal/mpi ./internal/service ./internal/compress ./internal/dump

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# One tiny fused-vs-staged step pair through the real driver; fails on any
# panic in either execution model.
bench-smoke:
	$(GO) run ./cmd/mpcf-bench -exp sim -n 8 -steps 2 -json ""

# Machine-readable perf record for cross-PR diffing (docs/observability.md).
sim-json:
	$(GO) run ./cmd/mpcf-bench -exp sim -steps 50 -json BENCH_sim.json

# Wire-transport message-size sweep on both transports (docs/networking.md).
bench-net:
	$(GO) run ./cmd/mpcf-bench -exp net -net-json BENCH_net.json

# Regenerate the checked-in perf baselines under bench/. Run on a quiet
# machine, inspect the diff, and commit — the CI perf-smoke job compares
# against these in warn mode; local `make bench-compare` gates hard.
bench-snapshot:
	$(GO) run ./cmd/mpcf-bench -exp sim -n 8 -steps 20 -json bench/BENCH_sim.json
	$(GO) run ./cmd/mpcf-bench -exp net -net-json bench/BENCH_net.json
	$(GO) run ./cmd/mpcf-bench -exp cloud -cloud-json bench/BENCH_cloud.json
	$(GO) run ./cmd/mpcf-bench -exp service -service-json bench/BENCH_service.json
	$(GO) run ./cmd/mpcf-bench -exp io -io-json bench/BENCH_io.json

# The regression gate: rerun both benchmarks at the baselines' own
# configuration and fail on structural changes or rate collapse
# (docs/observability.md). SLACK widens the thresholds for noisy hosts.
SLACK ?= 1
bench-compare:
	$(GO) run ./cmd/mpcf-bench -compare bench/BENCH_sim.json,bench/BENCH_net.json,bench/BENCH_cloud.json,bench/BENCH_service.json,bench/BENCH_io.json -compare-slack $(SLACK)

# CI perf smoke: a 2-rank TCP run through the observatory (merged trace +
# imbalance report artifacts) plus the bench gate in report-only mode.
perf-smoke: bin
	@rm -rf perf-smoke.tmp && mkdir perf-smoke.tmp
	./bin/mpcf-launch -n 2 -- -case sod -ranks 2,1,1 -blocks 2,2,2 -n 8 -steps 6 \
		-quiet -diag-every 0 \
		-obs-trace perf-smoke.tmp/trace_merged.json \
		-obs-report perf-smoke.tmp/imbalance.txt \
		-obs-report-json perf-smoke.tmp/imbalance.json
	@test -s perf-smoke.tmp/trace_merged.json
	@test -s perf-smoke.tmp/imbalance.txt
	cat perf-smoke.tmp/imbalance.txt
	$(GO) run ./cmd/mpcf-bench -compare bench/BENCH_sim.json,bench/BENCH_net.json,bench/BENCH_cloud.json,bench/BENCH_service.json,bench/BENCH_io.json -compare-warn
	@echo "perf-smoke: merged trace, imbalance report and compare gate all ran"

# End-to-end service smoke (docs/service.md): mpcf-serve fields one
# in-process and one 2-rank fleet job over the REST API, both event streams
# drain to a terminal success and the metrics endpoint reports zero stuck
# jobs.
service-smoke: bin
	bash scripts/service_smoke.sh

# End-to-end transport correctness: the same small Sod problem through two
# real OS processes over tcp — clean wire AND a seeded faulty wire (drops,
# duplications, resets masked by the reliability layer) — must produce
# conserved-field checksums bitwise identical to the in-process transport.
smoke-net: bin
	@rm -rf smoke-net.tmp && mkdir smoke-net.tmp
	./bin/mpcf-sim -case sod -ranks 2,1,1 -blocks 2,2,2 -n 8 -steps 5 \
		-quiet -diag-every 0 -sums smoke-net.tmp/inproc.sums
	./bin/mpcf-launch -n 2 -- -case sod -ranks 2,1,1 -blocks 2,2,2 -n 8 -steps 5 \
		-quiet -diag-every 0 -sums smoke-net.tmp/tcp.sums
	cmp smoke-net.tmp/inproc.sums smoke-net.tmp/tcp.sums
	./bin/mpcf-launch -n 2 -- -case sod -ranks 2,1,1 -blocks 2,2,2 -n 8 -steps 5 \
		-quiet -diag-every 0 -sums smoke-net.tmp/chaos.sums \
		-net-chaos "drop=0.05,dup=0.05,reset=0.01,seed=11" \
		-net-heartbeat 50ms -net-retransmit 150ms -net-peer-timeout 20s
	cmp smoke-net.tmp/inproc.sums smoke-net.tmp/chaos.sums
	./bin/mpcf-launch -n 2 -- -case sod -ranks 2,1,1 -blocks 2,2,2 -n 8 -steps 5 \
		-quiet -diag-every 0 -sums smoke-net.tmp/migrate.sums \
		-layout hilbert -rebalance-force-step 2 \
		-net-chaos "drop=0.05,dup=0.05,reset=0.01,seed=11" \
		-net-heartbeat 50ms -net-retransmit 150ms -net-peer-timeout 20s
	cmp smoke-net.tmp/inproc.sums smoke-net.tmp/migrate.sums
	@echo "smoke-net: checksums bitwise identical across transports (clean + chaos + hilbert migration)"
	@rm -rf smoke-net.tmp

# The chaos suite under the race detector: fault-injected transport
# conformance, reconnect/replay/escalation paths, frame fuzz seeds, and the
# sim-level bitwise-under-chaos and checkpoint-restart proofs.
chaos:
	$(GO) test -race -count=1 ./internal/transport ./internal/transport/faulty ./internal/mpi
	$(GO) test -race -count=1 -run 'TestSimBitwiseUnderChaos|TestRestoreResumesBitwise|TestSimMigrationBitwiseOverTCPChaos|TestFrameStreamBitwiseUnderChaos' ./internal/sim
	$(GO) test -race -count=1 ./cmd/mpcf-launch

# Full-ladder verification: convergence orders, conservation audit and the
# Rayleigh-collapse comparison, gated on testdata/tolerances.json. Exits
# non-zero when any tolerance band fails.
verify:
	$(GO) run ./cmd/mpcf-verify -mode full -o VERIFY.json

# The coarse ladder (same one `go test ./internal/verify` runs).
verify-short:
	$(GO) run ./cmd/mpcf-verify -mode short -o VERIFY.json

# Replay the checked-in fuzz seed corpora without fuzzing new inputs.
fuzz-seed:
	$(GO) test -run 'Fuzz' ./internal/compress ./internal/dump ./internal/transport ./internal/service
