# Verification targets; `make check` is the tier-1 gate plus vet and the
# race-enabled telemetry/sim tests.

GO ?= go

.PHONY: check vet build test race bench sim-json

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/telemetry ./internal/sim

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# Machine-readable perf record for cross-PR diffing (docs/observability.md).
sim-json:
	$(GO) run ./cmd/mpcf-bench -exp sim -steps 50 -json BENCH_sim.json
