# Verification targets; `make check` is the tier-1 gate plus vet and the
# race-enabled telemetry/sim/cluster tests. `make verify` runs the full
# exact-solution verification ladder and writes VERIFY.json
# (docs/verification.md).

GO ?= go

.PHONY: check vet build test race bench bench-smoke sim-json verify verify-short fuzz-seed

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/telemetry ./internal/sim ./internal/cluster ./internal/node

bench:
	$(GO) test -bench=. -benchmem -run '^$$' .

# One tiny fused-vs-staged step pair through the real driver; fails on any
# panic in either execution model.
bench-smoke:
	$(GO) run ./cmd/mpcf-bench -exp sim -n 8 -steps 2 -json ""

# Machine-readable perf record for cross-PR diffing (docs/observability.md).
sim-json:
	$(GO) run ./cmd/mpcf-bench -exp sim -steps 50 -json BENCH_sim.json

# Full-ladder verification: convergence orders, conservation audit and the
# Rayleigh-collapse comparison, gated on testdata/tolerances.json. Exits
# non-zero when any tolerance band fails.
verify:
	$(GO) run ./cmd/mpcf-verify -mode full -o VERIFY.json

# The coarse ladder (same one `go test ./internal/verify` runs).
verify-short:
	$(GO) run ./cmd/mpcf-verify -mode short -o VERIFY.json

# Replay the checked-in fuzz seed corpora without fuzzing new inputs.
fuzz-seed:
	$(GO) test -run 'Fuzz' ./internal/compress
