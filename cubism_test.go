package cubism

import (
	"math"
	"os"
	"path/filepath"
	"testing"
)

// TestPublicAPISodRun: the quickstart flow through the public façade.
func TestPublicAPISodRun(t *testing.T) {
	var steps int
	sum, err := Run(Config{
		Blocks:    [3]int{2, 1, 1},
		BlockSize: 8,
		Extent:    1,
		Init:      SodInit,
		Steps:     4,
	}, func(s StepInfo) { steps++ })
	if err != nil {
		t.Fatal(err)
	}
	if steps != 4 || sum.Steps != 4 {
		t.Fatalf("steps %d / %d", steps, sum.Steps)
	}
}

func TestPublicAPICloudWithDumps(t *testing.T) {
	dir := t.TempDir()
	bubbles, err := GenerateCloud(CloudSpec{
		Center: [3]float64{0.5, 0.5, 0.5},
		Radius: 0.3,
		N:      4,
		RMin:   0.05, RMax: 0.1,
		Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(bubbles) != 4 {
		t.Fatalf("bubbles = %d", len(bubbles))
	}
	_, err = Run(Config{
		Blocks:     [3]int{2, 2, 2},
		BlockSize:  8,
		Extent:     1,
		Boundaries: WallBC(ZLo),
		Init:       CloudField(bubbles, 0.03),
		Steps:      2,
		DumpEvery:  2,
		DumpDir:    dir,
		Wall:       ZLo,
		HasWall:    true,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Read the dump back through the public API.
	hdr, fields, err := ReadDump(filepath.Join(dir, "p_step000002.mpcf"))
	if err != nil {
		t.Fatal(err)
	}
	if hdr.Quantity != "p" || hdr.BlockSize != 8 {
		t.Fatalf("header %+v", hdr)
	}
	if len(fields) != 1 || len(fields[0]) != 8 {
		t.Fatalf("expected 1 rank x 8 blocks, got %d x %d", len(fields), len(fields[0]))
	}
	for _, blk := range fields[0] {
		for _, v := range blk {
			if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
				t.Fatal("non-finite value in dump")
			}
		}
	}
}

func TestPublicAPIMultiRankVector(t *testing.T) {
	sum, err := Run(Config{
		Ranks:     [3]int{2, 1, 1},
		Blocks:    [3]int{1, 1, 1},
		BlockSize: 8,
		Extent:    1,
		Vector:    true,
		Init:      SodInit,
		Steps:     3,
		DiagEvery: 1,
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if sum.GlobalCells != 2*8*8*8 {
		t.Fatalf("cells = %d", sum.GlobalCells)
	}
}

func TestMixEndpointsPublic(t *testing.T) {
	g, pi := Mix(Liquid, Vapor, 0)
	if g != Liquid.G() || pi != Liquid.P() {
		t.Error("Mix(0) wrong")
	}
}

func TestDefaultBCConstructors(t *testing.T) {
	if DefaultBC()[XLo] != Absorbing {
		t.Error("default BC not absorbing")
	}
	if WallBC(ZLo)[ZLo] != Reflecting {
		t.Error("wall BC not reflecting")
	}
	if PeriodicBC()[YHi] != Periodic {
		t.Error("periodic BC wrong")
	}
}

func TestMain(m *testing.M) {
	os.Exit(m.Run())
}
